package recursive

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"tofu/internal/coarsen"
	"tofu/internal/dp"
	"tofu/internal/models"
	"tofu/internal/plan"
	"tofu/internal/shape"
	"tofu/internal/topo"
)

// planJSON renders a plan for byte comparison.
func planBytes(t *testing.T, p *plan.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// diffCases pairs every profile on which the exhaustive enumeration is
// feasible with a model that exercises it.
func diffCases(t *testing.T) []struct {
	tp  topo.Topology
	cfg models.Config
} {
	t.Helper()
	mk := func(prof string, cfg models.Config) struct {
		tp  topo.Topology
		cfg models.Config
	} {
		tp, err := topo.Profile(prof)
		if err != nil {
			t.Fatal(err)
		}
		return struct {
			tp  topo.Topology
			cfg models.Config
		}{tp, cfg}
	}
	cases := []struct {
		tp  topo.Topology
		cfg models.Config
	}{
		mk("dgx1", models.Config{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}),
		mk("cluster-2x8", models.Config{Family: "rnn", Depth: 2, Width: 1500, Batch: 64}),
		mk("dgx2", models.Config{Family: "rnn", Depth: 2, Width: 3000, Batch: 64}),
		mk("cluster-4x2x8", models.Config{Family: "mlp", Depth: 3, Width: 2048, Batch: 128}),
	}
	if !testing.Short() {
		cases = append(cases,
			mk("cluster-4x2x8", models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 128}),
			mk("cluster-4x2x12", models.Config{Family: "rnn", Depth: 4, Width: 3000, Batch: 96}),
			mk("cluster-8x2x8", models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 256}),
		)
	}
	return cases
}

// TestOrderingDifferentialByteIdentical is the branch-and-bound contract:
// on every profile where the flat enumeration is feasible, the tree search
// chooses the byte-identical plan, at every parallelism.
func TestOrderingDifferentialByteIdentical(t *testing.T) {
	for _, c := range diffCases(t) {
		m, err := models.Build(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		k := int64(c.tp.NumGPUs())
		var flatStats SearchStats
		ref, err := Partition(m.G, k, Options{Topology: &c.tp, TopoExhaustive: true, Stats: &flatStats})
		if err != nil {
			t.Fatalf("%s/%s: exhaustive: %v", c.tp.Name, c.cfg, err)
		}
		refJSON := planBytes(t, ref)
		for _, par := range []int{1, 2, 8} {
			var st SearchStats
			p, err := Partition(m.G, k, Options{Topology: &c.tp, Parallelism: par, Stats: &st})
			if err != nil {
				t.Fatalf("%s/%s par=%d: %v", c.tp.Name, c.cfg, par, err)
			}
			if !bytes.Equal(planBytes(t, p), refJSON) {
				t.Errorf("%s/%s par=%d: plan differs from exhaustive enumeration", c.tp.Name, c.cfg, par)
			}
			if st.Orderings != flatStats.Orderings {
				t.Errorf("%s/%s: tree sees %d orderings, flat %d", c.tp.Name, c.cfg, st.Orderings, flatStats.Orderings)
			}
			if st.DPSolves >= st.FlatDPSolves && st.FlatDPSolves > st.Orderings {
				t.Errorf("%s/%s: prefix sharing saved nothing (%d dp solves vs %d flat)",
					c.tp.Name, c.cfg, st.DPSolves, st.FlatDPSolves)
			}
		}
	}
}

// TestOrderingDifferentialBeam repeats the byte-identity contract under
// beam search: with MaxStates set the per-step results are no longer
// optima, so the realized-δ bound tightening must stay off (it would be
// inadmissible) while dp.LowerBound keeps bounding the beam costs.
func TestOrderingDifferentialBeam(t *testing.T) {
	for _, prof := range []string{"dgx2", "cluster-4x2x8"} {
		tp, err := topo.Profile(prof)
		if err != nil {
			t.Fatal(err)
		}
		cfg := models.Config{Family: "rnn", Depth: 2, Width: 3000, Batch: 64}
		if prof == "cluster-4x2x8" {
			cfg = models.Config{Family: "rnn", Depth: 2, Width: 8192, Batch: 128}
		}
		m, err := models.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		k := int64(tp.NumGPUs())
		for _, maxStates := range []int{4, 64} {
			ref, err := Partition(m.G, k, Options{Topology: &tp, TopoExhaustive: true, MaxStates: maxStates})
			if err != nil {
				t.Fatalf("%s maxStates=%d: exhaustive: %v", prof, maxStates, err)
			}
			p, err := Partition(m.G, k, Options{Topology: &tp, MaxStates: maxStates})
			if err != nil {
				t.Fatalf("%s maxStates=%d: %v", prof, maxStates, err)
			}
			if !bytes.Equal(planBytes(t, p), planBytes(t, ref)) {
				t.Errorf("%s maxStates=%d: beam plan differs from exhaustive enumeration", prof, maxStates)
			}
		}
	}
}

// TestOrderingSpaceGuard: a pathological machine fails fast with guidance
// instead of searching (or silently truncating, as the old cap did) —
// including through the exhaustive oracle — while TopologyNaive still
// works.
func TestOrderingSpaceGuard(t *testing.T) {
	hw := topo.DefaultHW()
	hw.NumGPUs = 1 << 16
	monster := topo.Topology{
		Name: "monster",
		HW:   hw,
		Levels: []topo.Level{
			{Name: "l0", GroupSize: 16, Bandwidth: 21e9},
			{Name: "l1", GroupSize: 16, Bandwidth: 12e9},
			{Name: "l2", GroupSize: 16, Bandwidth: 6e9},
			{Name: "l3", GroupSize: 16, Bandwidth: 3.125e9, Network: true},
		},
	}
	if err := monster.Validate(); err != nil {
		t.Fatal(err)
	}
	m, err := models.Build(models.Config{Family: "mlp", Depth: 2, Width: 1 << 17, Batch: 1 << 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, exhaustive := range []bool{false, true} {
		_, err := Partition(m.G, 1<<16, Options{Topology: &monster, TopoExhaustive: exhaustive})
		if err == nil || !strings.Contains(err.Error(), "beyond exact search") {
			t.Errorf("exhaustive=%v: want ordering-space guard error, got %v", exhaustive, err)
		}
	}
	if _, err := Partition(m.G, 1<<16, Options{Topology: &monster, TopologyNaive: true}); err != nil {
		t.Errorf("naive layout must stay available on huge machines: %v", err)
	}
}

// TestOrderingSearchEffort locks in the acceptance numbers: on the 3-level
// 64- and 128-GPU clusters the prefix-shared branch-and-bound runs at least
// 5x fewer DP steps than the flat enumeration would.
func TestOrderingSearchEffort(t *testing.T) {
	cases := []struct {
		prof      string
		cfg       models.Config
		orderings int
	}{
		{"cluster-2x8", models.Config{Family: "rnn", Depth: 2, Width: 1024, Batch: 64}, 4},
		{"cluster-4x2x8", models.Config{Family: "mlp", Depth: 3, Width: 2048, Batch: 128}, 60},
		{"cluster-8x2x8", models.Config{Family: "mlp", Depth: 3, Width: 4096, Batch: 256}, 140},
	}
	for _, c := range cases {
		tp, err := topo.Profile(c.prof)
		if err != nil {
			t.Fatal(err)
		}
		m, err := models.Build(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		var st SearchStats
		if _, err := Partition(m.G, int64(tp.NumGPUs()), Options{Topology: &tp, Stats: &st}); err != nil {
			t.Fatalf("%s: %v", c.prof, err)
		}
		if st.Orderings != c.orderings {
			t.Errorf("%s: orderings = %d, want %d", c.prof, st.Orderings, c.orderings)
		}
		if st.FlatDPSolves != c.orderings*len(topoPool(tp)) {
			t.Errorf("%s: flat dp solves = %d, want %d", c.prof, st.FlatDPSolves, c.orderings*len(topoPool(tp)))
		}
		if tp.NumGPUs() >= 64 && st.DPSolves*5 > st.FlatDPSolves {
			t.Errorf("%s: dp solves %d not >=5x below flat %d", c.prof, st.DPSolves, st.FlatDPSolves)
		}
	}
}

// TestLowerBoundAdmissible checks the branch-and-bound invariant directly:
// at every prefix of randomized orderings, the per-factor lower bound never
// exceeds the δ any later step with that factor realizes. (Pruning on an
// inadmissible bound could silently drop the optimum; the differential test
// would catch the symptom, this one catches the cause.)
func TestLowerBoundAdmissible(t *testing.T) {
	tp, err := topo.Profile("cluster-4x2x8")
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.Build(models.Config{Family: "rnn", Depth: 2, Width: 2048, Batch: 128})
	if err != nil {
		t.Fatal(err)
	}
	c, err := coarsen.Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	cache := dp.NewPriceCache()
	orderings := topoOrderings(tp, false)
	rng := rand.New(rand.NewSource(5))
	rng.Shuffle(len(orderings), func(i, j int) { orderings[i], orderings[j] = orderings[j], orderings[i] })
	if len(orderings) > 8 {
		orderings = orderings[:8]
	}
	for _, ord := range orderings {
		// Pass 1: realize the ordering, recording each prefix's shapes and
		// each step's δ.
		shapes := make(map[int]shape.Shape, len(m.G.Tensors))
		for _, tn := range m.G.Tensors {
			shapes[tn.ID] = append(shape.Shape(nil), tn.Shape...)
		}
		prefixShapes := make([]map[int]shape.Shape, len(ord))
		deltas := make([]float64, len(ord))
		for i := range ord {
			prefixShapes[i] = make(map[int]shape.Shape, len(shapes))
			for id, s := range shapes {
				prefixShapes[i][id] = append(shape.Shape(nil), s...)
			}
			res, err := dp.Solve(&dp.Problem{
				Coarse: c, K: ord[i].f, Shapes: shapes, Cache: cache,
			})
			if err != nil {
				t.Fatalf("ordering %v step %d: %v", ord, i, err)
			}
			deltas[i] = res.CommBytes
			for tid, dim := range res.TensorCut {
				if dim < 0 {
					continue
				}
				if err := shapes[tid].SplitInPlace(dim, ord[i].f); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Pass 2: the bound computed at any prefix must not exceed the δ of
		// any later step with that factor.
		for i := range ord {
			for j := i; j < len(ord); j++ {
				lb, err := dp.LowerBound(&dp.Problem{
					Coarse: c, K: ord[j].f, Shapes: prefixShapes[i], Cache: cache,
				}, nil)
				if err != nil {
					t.Fatalf("ordering %v prefix %d: bound for %d: %v", ord, i, ord[j].f, err)
				}
				if lb > deltas[j]*(1+1e-9) {
					t.Errorf("ordering %v: bound %g at prefix %d exceeds realized δ %g of step %d (factor %d)",
						ord, lb, i, deltas[j], j, ord[j].f)
				}
			}
		}
	}
}

// TestTopoInfeasibleErrorsAggregated: a topology no ordering can host
// reports every distinct infeasibility reason, not just the first — in both
// the branch-and-bound and the exhaustive engines.
func TestTopoInfeasibleErrorsAggregated(t *testing.T) {
	tp, err := topo.Profile("cluster-4x2x12")
	if err != nil {
		t.Fatal(err)
	}
	// Batch 128 is not divisible by 3, so the factor-3 step can never place
	// anywhere — at several distinct shapes along the way.
	m, err := models.Build(models.Config{Family: "rnn", Depth: 2, Width: 3000, Batch: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, exhaustive := range []bool{false, true} {
		_, err = Partition(m.G, int64(tp.NumGPUs()), Options{Topology: &tp, TopoExhaustive: exhaustive})
		if err == nil {
			t.Fatalf("exhaustive=%v: expected infeasibility", exhaustive)
		}
		msg := err.Error()
		if !strings.Contains(msg, `topology "cluster-4x2x12"`) {
			t.Errorf("exhaustive=%v: error lacks topology banner: %v", exhaustive, err)
		}
		if strings.Count(msg, "no dimension divisible by 3") < 2 {
			t.Errorf("exhaustive=%v: error does not aggregate distinct reasons:\n%v", exhaustive, err)
		}
	}
}

// blockOrderings reproduces the retired >96-orderings fallback: permute
// whole levels, factors contiguous and largest-first within each level.
func blockOrderings(tp topo.Topology) [][]factorLevel {
	var blocks [][]factorLevel
	for li := range tp.Levels {
		var b []factorLevel
		for _, f := range Factorize(tp.Levels[li].GroupSize) {
			b = append(b, factorLevel{f: f, level: li})
		}
		if len(b) > 0 {
			blocks = append(blocks, b)
		}
	}
	var out [][]factorLevel
	var rec func(rem [][]factorLevel, cur []factorLevel)
	rec = func(rem [][]factorLevel, cur []factorLevel) {
		if len(rem) == 0 {
			out = append(out, append([]factorLevel(nil), cur...))
			return
		}
		for i := range rem {
			rest := make([][]factorLevel, 0, len(rem)-1)
			rest = append(rest, rem[:i]...)
			rest = append(rest, rem[i+1:]...)
			rec(rest, append(cur, rem[i]...))
		}
	}
	rec(blocks, nil)
	return out
}

// TestOrderingSearchSupersedesBlockFallback is the regression pin for the
// retired fallback. cluster-4x2x12's 180 orderings are past the old
// 96-ordering cap, so the old search silently truncated to 6 level-block
// orderings — 174 candidates never costed, no optimality evidence, and a
// within-level factor order fixed by fiat. The new search certifies the
// optimum over the full space (byte-identical to exhaustive) at a fraction
// of the DP work, and this test pins the certificate the fallback could
// never produce: the full-space optimum costs no more than the best of the
// 6 block orderings, and the block set really is the 6/180 subset the old
// code searched. (On the benchmark op library the exact per-step DP makes
// per-factor step costs monotone along any branch, which is why the block
// winner happens to tie here; nothing enforced that under beam search or
// future operators — the fallback was an unverifiable heuristic, which is
// exactly why it is gone.)
func TestOrderingSearchSupersedesBlockFallback(t *testing.T) {
	tp, err := topo.Profile("cluster-4x2x12")
	if err != nil {
		t.Fatal(err)
	}
	m, err := models.Build(models.Config{Family: "rnn", Depth: 4, Width: 3000, Batch: 96})
	if err != nil {
		t.Fatal(err)
	}
	k := int64(tp.NumGPUs())

	var st SearchStats
	p, err := Partition(m.G, k, Options{Topology: &tp, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	best := weightedComm(p, tp)

	if st.Orderings != 180 {
		t.Fatalf("orderings = %d, want 180", st.Orderings)
	}
	const oldCap = 96 // the retired maxTopoOrderings
	if st.Orderings <= oldCap {
		t.Fatalf("profile no longer exceeds the old %d-ordering cap", oldCap)
	}

	blocks := blockOrderings(tp)
	if len(blocks) != 6 {
		t.Fatalf("block fallback set = %d orderings, want 6", len(blocks))
	}
	c, err := coarsen.Coarsen(m.G)
	if err != nil {
		t.Fatal(err)
	}
	cache := dp.NewPriceCache()
	blockBest := -1.0
	for _, ord := range blocks {
		factors := make([]int64, len(ord))
		levels := make([]int, len(ord))
		for i, fl := range ord {
			factors[i] = fl.f
			levels[i] = fl.level
		}
		pb, err := runSteps(m.G, c, k, factors, levels, Options{}, cache, nil)
		if err != nil {
			continue
		}
		if cost := weightedComm(pb, tp); blockBest < 0 || cost < blockBest {
			blockBest = cost
		}
	}
	if blockBest < 0 {
		t.Fatal("no feasible block ordering")
	}
	if best > blockBest*(1+1e-9) {
		t.Errorf("full-space optimum %g worse than block-fallback best %g", best, blockBest)
	}
	if st.DPSolves*5 > st.FlatDPSolves {
		t.Errorf("dp solves %d not >=5x below flat %d over the full space", st.DPSolves, st.FlatDPSolves)
	}
}
