package recursive

// This file implements the topology-aware ordering search as best-first
// branch and bound over the prefix tree of factor-to-level orderings
// (replacing the flat enumeration that re-ran the whole recursive DP once
// per ordering). Two observations make the tree cheap:
//
//  1. Prefix sharing. A step's DP result depends only on the FACTOR prefix
//     before it — the levels merely weight the accumulated cost — so every
//     distinct factor prefix runs dp.Solve exactly once and all orderings
//     passing through it reuse the result and the divided shapes. A machine
//     whose levels factor into all 2s (every power-of-two cluster) collapses
//     the entire search to one DP run per recursion depth.
//
//  2. Admissible bounds. For a node with prefix P, every not-yet-placed
//     factor f must eventually run a step whose δ is at least
//     dp.LowerBound(f, shapes after P): costs are priced at original shapes
//     (Lemma 1) and shapes only shrink below P, so strategies and cut
//     dimensions can only disappear. Dividing each remaining pair's bound by
//     its own level's bandwidth (the pair's level is fixed by the machine,
//     not a choice) gives h(P) ≤ true remaining cost, and any node with
//     g(P)+h(P) above the incumbent can only lead to strictly worse
//     orderings.
//
// Pruning uses a strict comparison (plus an ulp-scale slack for float
// summation-order noise), so every ordering that could tie the optimum is
// still explored; ties then break by the exhaustive enumeration's order.
// The chosen plan is therefore byte-identical to the flat enumeration
// wherever that search is feasible — the differential test in
// ordering_test.go locks this in — while the DP executions drop from
// O(orderings × depth) to O(distinct factor prefixes).

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"tofu/internal/cancel"
	"tofu/internal/coarsen"
	"tofu/internal/dp"
	"tofu/internal/graph"
	"tofu/internal/obs"
	"tofu/internal/plan"
	"tofu/internal/shape"
	"tofu/internal/topo"
)

// SearchStats reports the effort of one topology-aware ordering search;
// Options.Stats receives a copy when non-nil. The plan itself is
// deterministic at any Parallelism; the node counters can vary slightly
// with the expansion schedule when Parallelism > 1.
type SearchStats struct {
	// Orderings is the search-space size: every distinct factor-to-level
	// ordering of the machine's pool.
	Orderings int `json:"orderings"`
	// Leaves is how many complete orderings were actually costed.
	Leaves int `json:"leaves"`
	// Expanded and Pruned count branch-and-bound tree nodes expanded vs
	// discarded because their admissible bound exceeded the incumbent.
	Expanded int `json:"expanded"`
	Pruned   int `json:"pruned"`
	// DPSolves is the number of per-step DP executions actually run — one
	// per distinct factor prefix reached. FlatDPSolves is what the flat
	// enumeration would have run for the same space (orderings × depth).
	DPSolves     int `json:"dp_solves"`
	FlatDPSolves int `json:"flat_dp_solves"`
	// LBQueries counts admissible lower-bound evaluations (dp.LowerBound).
	LBQueries int `json:"lb_queries"`
	// BestCost is the winning bandwidth-weighted communication time Σ δ/B
	// in seconds.
	BestCost float64 `json:"best_cost"`
	// WarmStart reports that Options.WarmStart supplied a valid, feasible
	// seed ordering whose cost (WarmCost) primed the incumbent before any
	// tree expansion — pruning fires from the first pop instead of waiting
	// for the naive dive's (often looser) cost. The chosen plan is
	// byte-identical with or without a seed; only the effort counters move.
	WarmStart bool    `json:"warm_start,omitempty"`
	WarmCost  float64 `json:"warm_cost,omitempty"`
}

// prefixState is the per-factor-prefix memo node: the DP result of the
// prefix's last step and the tensor shapes after it, computed exactly once
// however many orderings share the prefix.
type prefixState struct {
	once   sync.Once
	parent *prefixState
	factor int64
	// done flips after the once body returns; readers that merely want to
	// PEEK at an already-computed sibling's δ (the memo gate in boundAt)
	// check it instead of entering once.Do, which would block on — or worse,
	// run — a DP step the peek was trying to avoid.
	done atomic.Bool

	res    *dp.Result
	shapes map[int]shape.Shape
	err    error

	// lastDelta maps factor -> the realized δ of that factor's most recent
	// occurrence in this prefix. Shapes only shrink down a branch, so a
	// later step with the same factor can only cost more — a second, often
	// much tighter admissible bound the expansion maxes with dp.LowerBound.
	lastDelta map[int64]float64

	// lb memoizes dp.LowerBound per candidate next factor at these shapes;
	// the prepared evaluators are handed to the child's Solve via EvalReuse.
	lbMu sync.Mutex
	lb   map[int64]*lbQuery
}

type lbQuery struct {
	once  sync.Once
	delta float64
	reuse *dp.EvalReuse
	err   error
}

// obNode is one branch-and-bound tree node: a (factor, level) prefix with
// its accumulated weighted cost and admissible total bound. Nodes are LAZY:
// a child is pushed with its parent's evaluated state and the parent's bound
// as a provisional priority, and runs its own DP step only when popped — so
// a strong incumbent (a warm-start seed, or an early leaf) prunes whole
// subtrees before their prefix DP ever runs, instead of after.
type obNode struct {
	steps  []factorLevel
	ranks  []uint8 // rank sequence in canonical pool order — the lex tie-break
	key    string  // factor-prefix memo key (own factor included)
	parKey string  // parent's factor-prefix key (for the pop-time re-bound)
	par    *prefixState
	gPar   float64 // parent's Σ δ_i/B_i
	bound  float64 // provisional: the parent's evaluated bound (admissible)
}

// orderSearch carries one branch-and-bound run.
type orderSearch struct {
	g     *graph.Graph
	c     *coarsen.Coarse
	k     int64
	tp    topo.Topology
	opts  Options
	cache *dp.PriceCache

	// uniq/counts are the distinct (factor, level) pairs in canonical order
	// (level ascending, factor descending — the flat enumeration's order)
	// with their multiplicities; pool is uniq expanded, i.e. the naive
	// hierarchy-following ordering.
	uniq   []factorLevel
	counts []int
	pool   []factorLevel
	rootPS *prefixState

	// trace is the "order.search" span (nil when tracing is off). Expand,
	// prune, seed and per-prefix solve spans attach flat under it; at
	// Parallelism > 1 their order follows the expansion schedule, like the
	// SearchStats node counters.
	trace *obs.Span

	mu        sync.Mutex
	prefixes  map[string]*prefixState
	bestSet   bool
	bestCost  float64
	bestSteps []factorLevel
	bestRanks []uint8
	errs      errCollector
	stats     SearchStats
	// cancelled flips when any layer reports a cancellation (the token
	// polled here, or a dp.Solve that stopped mid-prefix). The walk then
	// winds down and the incumbent ships as a degraded plan.
	cancelled bool
}

// errCollector deduplicates infeasibility reasons by message; both search
// engines report through it so a fully infeasible topology reads the same
// either way. Not safe for concurrent use — callers hold their own lock.
type errCollector struct {
	seen map[string]struct{}
	errs []error
}

func (c *errCollector) add(err error) {
	if c.seen == nil {
		c.seen = map[string]struct{}{}
	}
	msg := err.Error()
	if _, ok := c.seen[msg]; !ok {
		c.seen[msg] = struct{}{}
		c.errs = append(c.errs, err)
	}
}

func newOrderSearch(g *graph.Graph, c *coarsen.Coarse, k int64, tp topo.Topology,
	opts Options, cache *dp.PriceCache, pool []factorLevel) *orderSearch {

	s := &orderSearch{
		g: g, c: c, k: k, tp: tp, opts: opts, cache: cache,
		prefixes: map[string]*prefixState{},
	}
	// pool arrives in canonical order (topoPool); collapse runs into
	// uniq/counts.
	for _, fl := range pool {
		if n := len(s.uniq); n > 0 && s.uniq[n-1] == fl {
			s.counts[n-1]++
		} else {
			s.uniq = append(s.uniq, fl)
			s.counts = append(s.counts, 1)
		}
	}
	s.pool = pool

	// Root: original shapes, cloned into one slab the per-prefix divisions
	// never touch (each child clones again before dividing).
	s.rootPS = &prefixState{shapes: cloneShapes(g, nil), lb: map[int64]*lbQuery{}}
	s.prefixes[""] = s.rootPS
	return s
}

// cloneShapes copies every tensor's current shape (src nil = the graph's
// original shapes) into a fresh slab-backed map safe to divide in place.
func cloneShapes(g *graph.Graph, src map[int]shape.Shape) map[int]shape.Shape {
	total := 0
	for _, t := range g.Tensors {
		total += t.Shape.Rank()
	}
	slab := make([]int64, 0, total)
	out := make(map[int]shape.Shape, len(g.Tensors))
	for _, t := range g.Tensors {
		cur := shape.Shape(t.Shape)
		if src != nil {
			cur = src[t.ID]
		}
		start := len(slab)
		slab = append(slab, cur...)
		out[t.ID] = shape.Shape(slab[start:len(slab):len(slab)])
	}
	return out
}

// prefixFor returns the memoized state for parent's prefix extended by
// factor f, running its DP step on first use.
func (s *orderSearch) prefixFor(parent *prefixState, key string, f int64) *prefixState {
	s.mu.Lock()
	ps, ok := s.prefixes[key]
	if !ok {
		ps = &prefixState{parent: parent, factor: f, lb: map[int64]*lbQuery{}}
		s.prefixes[key] = ps
	}
	s.mu.Unlock()
	ps.once.Do(func() {
		st := s.trace.Child("order.prefix")
		st.SetStr("prefix", key)
		s.computeStep(ps, st)
		st.End()
		ps.done.Store(true)
	})
	return ps
}

// memoDelta peeks at the already-computed realized δ of extending key by
// factor f, without triggering the DP. When present it is the EXACT cost of
// placing f directly below this prefix — and by the same config-subset
// monotonicity the lastDelta gate relies on (a descendant's shapes divide
// this prefix's shapes, so its strategy set only shrinks while Lemma 1
// keeps the pricing), it lower-bounds placing f anywhere deeper. That makes
// it the tightest admissible per-step gate available; a warm-start seed
// plants exactly these states along the winning chain before the first pop.
func (s *orderSearch) memoDelta(key string, f int64) (float64, bool) {
	s.mu.Lock()
	ps := s.prefixes[childKey(key, f)]
	s.mu.Unlock()
	if ps == nil || !ps.done.Load() || ps.err != nil || ps.res == nil {
		return 0, false
	}
	return ps.res.CommBytes, true
}

// computeStep runs one prefix's DP step: lower-bound first (it prepares the
// slot evaluators the Solve then reuses, and detects infeasibility before
// any frontier sweep), then the sweep, then the shape division.
func (s *orderSearch) computeStep(ps *prefixState, st *obs.Span) {
	par := ps.parent
	if par.err != nil {
		ps.err = par.err
		return
	}
	_, reuse, err := s.lowerBoundFor(par, ps.factor)
	if err != nil {
		ps.err = err
		return
	}
	res, err := dp.Solve(&dp.Problem{
		Coarse:         s.c,
		K:              ps.factor,
		Shapes:         par.shapes,
		DType:          s.opts.DType,
		StrategyFilter: s.opts.StrategyFilter,
		MaxStates:      s.opts.MaxStates,
		Parallelism:    s.opts.Parallelism,
		Cache:          s.cache,
		Reuse:          reuse,
		Trace:          st,
		Cancel:         s.opts.Cancel,
	})
	if err != nil {
		ps.err = err
		return
	}
	s.mu.Lock()
	s.stats.DPSolves++
	s.mu.Unlock()
	shapes := cloneShapes(s.g, par.shapes)
	for tid, dim := range res.TensorCut {
		if dim < 0 {
			continue
		}
		if err := shapes[tid].SplitInPlace(dim, ps.factor); err != nil {
			ps.err = fmt.Errorf("recursive: splitting tensor %d: %w", tid, err)
			return
		}
	}
	last := make(map[int64]float64, len(par.lastDelta)+1)
	for f, d := range par.lastDelta {
		last[f] = d
	}
	last[ps.factor] = res.CommBytes
	ps.res, ps.shapes, ps.lastDelta = res, shapes, last
}

// lowerBoundFor memoizes the admissible per-step bound for factor f at the
// prefix's shapes. An error means no step with factor f can ever run at or
// below this prefix (divisibility and strategy gates are monotone), so the
// whole subtree still owing f is infeasible.
func (s *orderSearch) lowerBoundFor(ps *prefixState, f int64) (float64, *dp.EvalReuse, error) {
	ps.lbMu.Lock()
	q, ok := ps.lb[f]
	if !ok {
		q = &lbQuery{}
		ps.lb[f] = q
	}
	ps.lbMu.Unlock()
	q.once.Do(func() {
		q.reuse = &dp.EvalReuse{}
		q.delta, q.err = dp.LowerBound(&dp.Problem{
			Coarse:         s.c,
			K:              f,
			Shapes:         ps.shapes,
			DType:          s.opts.DType,
			StrategyFilter: s.opts.StrategyFilter,
			MaxStates:      s.opts.MaxStates,
			Parallelism:    s.opts.Parallelism,
			Cache:          s.cache,
		}, q.reuse)
		s.mu.Lock()
		s.stats.LBQueries++
		s.mu.Unlock()
	})
	return q.delta, q.reuse, q.err
}

// pruneSlack absorbs float summation-order noise between a node's bound and
// a leaf's accumulated cost: the bound sums lb/B terms in pool order while
// leaves accumulate δ/B in step order, so an exact tie can round apart by a
// few ulps. The slack is far below any real cost gap and only ever KEEPS a
// branch, so byte-identity with the exhaustive enumeration is preserved.
func pruneSlack(cost float64) float64 {
	s := 1e-9 * cost
	if s < 1e-12 {
		s = 1e-12
	}
	return s
}

// shouldPrune reports whether a bound is provably worse than the incumbent.
func (s *orderSearch) shouldPrune(bound float64) bool {
	return s.bestSet && bound > s.bestCost+pruneSlack(s.bestCost)
}

// offerLeaf considers a complete feasible ordering for the incumbent. Ties
// keep the rank-lexicographically smallest ordering — exactly the first one
// the exhaustive enumeration (strict-improvement scan in lex order) keeps.
func (s *orderSearch) offerLeaf(steps []factorLevel, ranks []uint8, cost float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Leaves++
	s.offerLocked(steps, ranks, cost)
}

// offerLocked applies the incumbent update rule (strict improvement, then
// rank-lex tie-break) under s.mu. Seeding paths (dive, warm start) share it
// with offerLeaf so a seed can never displace an equal-cost lex-smaller
// ordering the tree finds later.
func (s *orderSearch) offerLocked(steps []factorLevel, ranks []uint8, cost float64) {
	if !s.bestSet || cost < s.bestCost ||
		(cost == s.bestCost && lexLess(ranks, s.bestRanks)) {
		s.bestSet = true
		s.bestCost = cost
		s.bestSteps = steps
		s.bestRanks = ranks
	}
}

func (s *orderSearch) addErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cancel.IsCancellation(err) {
		// A cancelled prefix is not an infeasible one: a search that was
		// stopped proved nothing about the topology. Keep the reason out of
		// the diagnostics and flag the walk to wind down.
		s.cancelled = true
		return
	}
	s.errs.add(err)
}

// lexLess compares rank sequences lexicographically (a strict prefix sorts
// first).
func lexLess(a, b []uint8) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func childKey(key string, f int64) string {
	return key + strconv.FormatInt(f, 10) + "."
}

// remaining returns the per-uniq-pair multiplicities still unplaced after
// the given rank prefix.
func (s *orderSearch) remaining(ranks []uint8) []int {
	rem := make([]int, len(s.counts))
	copy(rem, s.counts)
	for _, r := range ranks {
		rem[r]--
	}
	return rem
}

// boundAt computes the admissible total bound g + h for the subtree rooted
// at the prefix (key, ps) with remaining pair multiset rem. Every
// still-unplaced pair costs at least its factor's lower bound at this
// prefix's shapes — tightened, outside beam mode, by the realized δ of the
// same factor's last occurrence in the prefix (lastDelta) and by the
// realized δ of the already-memoized child step for that factor (memoDelta)
// — over its own level's bandwidth. An error means some remaining factor
// can never run at or below these shapes: the subtree is infeasible.
//
// The realized-δ tightenings rely on per-step optima being monotone down a
// branch, which beam search voids: a later beam result over a smaller state
// space can land below an earlier step's beam cost. dp.LowerBound alone
// stays admissible against beam results (it bounds the true optimum, which
// the beam never beats).
func (s *orderSearch) boundAt(ps *prefixState, key string, g float64, rem []int) (float64, error) {
	h := 0.0
	for j, fl2 := range s.uniq {
		if rem[j] == 0 {
			continue
		}
		lb, _, err := s.lowerBoundFor(ps, fl2.f)
		if err != nil {
			return 0, err
		}
		if s.opts.MaxStates == 0 {
			if d := ps.lastDelta[fl2.f]; d > lb {
				lb = d
			}
			if d, ok := s.memoDelta(key, fl2.f); ok && d > lb {
				lb = d
			}
		}
		h += float64(rem[j]) * lb / s.tp.LevelBandwidth(fl2.level)
	}
	return g + h, nil
}

// process evaluates one popped node: run its own (memoized) DP step, offer
// complete orderings to the incumbent, bound the subtree at the node's own
// shapes, and — if the bound survives the incumbent — emit its children in
// canonical order with that bound as their provisional priority. Children
// run no DP here; whether they ever do is decided against the incumbent in
// force when THEY pop, which is what lets a strong early incumbent save
// their prefix DP entirely. The root (empty key) skips the step and bounds
// the whole pool at the original shapes.
func (s *orderSearch) process(n *obNode) []*obNode {
	ps := s.rootPS
	g := 0.0
	if n.key != "" {
		fl := n.steps[len(n.steps)-1]
		ps = s.prefixFor(n.par, n.key, fl.f)
		if ps.err != nil {
			s.addErr(ps.err)
			return nil
		}
		g = n.gPar + ps.res.CommBytes/s.tp.LevelBandwidth(fl.level)
		if len(n.steps) == len(s.pool) {
			s.offerLeaf(n.steps, n.ranks, g)
			return nil
		}
	}
	rem := s.remaining(n.ranks)
	bound, err := s.boundAt(ps, n.key, g, rem)
	if err != nil {
		s.addErr(err)
		return nil
	}
	s.mu.Lock()
	if s.shouldPrune(bound) {
		s.stats.Pruned++
		s.mu.Unlock()
		s.pruneSpan(n.key, bound)
		return nil
	}
	s.stats.Expanded++
	s.mu.Unlock()
	if s.trace.Enabled() {
		ex := s.trace.Child("order.expand")
		ex.SetStr("prefix", n.key)
		ex.SetFloat("bound", bound)
		ex.End()
	}
	children := make([]*obNode, 0, len(s.uniq))
	for i, fl := range s.uniq {
		if rem[i] == 0 {
			continue
		}
		steps := append(append(make([]factorLevel, 0, len(n.steps)+1), n.steps...), fl)
		ranks := append(append(make([]uint8, 0, len(n.ranks)+1), n.ranks...), uint8(i))
		children = append(children, &obNode{
			steps: steps, ranks: ranks, key: childKey(n.key, fl.f),
			parKey: n.key, par: ps, gPar: g, bound: bound,
		})
	}
	return children
}

// dive evaluates the naive hierarchy-following ordering (the pool itself,
// the rank-lex-first leaf) to seed the incumbent before any best-first
// expansion; its prefix states are the ones the tree reuses first. The leaf
// count is left to the tree walk, which revisits this ordering through
// shared prefixes at zero DP cost.
func (s *orderSearch) dive() {
	ranks := make([]uint8, 0, len(s.pool))
	for i := range s.uniq {
		for c := 0; c < s.counts[i]; c++ {
			ranks = append(ranks, uint8(i))
		}
	}
	s.seedOrdering(s.pool, ranks)
}

// pruneSpan records one branch-and-bound prune as an instant span.
func (s *orderSearch) pruneSpan(key string, bound float64) {
	if !s.trace.Enabled() {
		return
	}
	pr := s.trace.Child("order.prune")
	pr.SetStr("prefix", key)
	pr.SetFloat("bound", bound)
	pr.End()
}

// seedOrdering walks one complete ordering through the (memoized) prefix
// chain and offers its cost to the incumbent, returning that cost and
// whether the whole chain was feasible. Seeds never count as leaves; the
// tree walk re-offers the same ordering through shared prefixes at zero DP
// cost, so the final plan is the tree's choice either way.
func (s *orderSearch) seedOrdering(order []factorLevel, ranks []uint8) (float64, bool) {
	ps := s.rootPS
	key := ""
	g := 0.0
	for _, fl := range order {
		key = childKey(key, fl.f)
		ps = s.prefixFor(ps, key, fl.f)
		if ps.err != nil {
			s.addErr(ps.err)
			return 0, false
		}
		g += ps.res.CommBytes / s.tp.LevelBandwidth(fl.level)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.offerLocked(order, ranks, g)
	return g, true
}

// warmOrder validates Options.WarmStart against the pool: the seed must be
// a permutation of exactly the machine's (factor, level) multiset. An
// invalid seed is ignored (the caller falls back to the naive dive) — seeds
// are advisory; they can never change the plan, only the search effort.
func (s *orderSearch) warmOrder() ([]factorLevel, []uint8, bool) {
	w := s.opts.WarmStart
	if len(w) != len(s.pool) {
		return nil, nil, false
	}
	rem := make([]int, len(s.counts))
	copy(rem, s.counts)
	order := make([]factorLevel, len(w))
	ranks := make([]uint8, len(w))
	for i, ws := range w {
		fl := factorLevel{f: ws.Factor, level: ws.Level}
		found := false
		for j, u := range s.uniq {
			if u == fl && rem[j] > 0 {
				rem[j]--
				order[i] = fl
				ranks[i] = uint8(j)
				found = true
				break
			}
		}
		if !found {
			return nil, nil, false
		}
	}
	return order, ranks, true
}

// run drains the branch-and-bound tree and assembles the winning plan.
func (s *orderSearch) run() (*plan.Plan, error) {
	s.trace = s.opts.Trace.Child("order.search")
	defer s.trace.End()
	s.stats.Orderings = multinomial(s.counts)
	s.stats.FlatDPSolves = s.stats.Orderings * len(s.pool)

	// Seed the incumbent: the warm-start ordering when one is supplied and
	// valid (its prefix chain is the one a neighboring request already found
	// to win), then always the naive hierarchy-following dive — the
	// incumbent keeps whichever is better, so a poor seed can only waste its
	// own chain's DP steps, never add any elsewhere.
	if order, ranks, ok := s.warmOrder(); ok {
		warm := s.trace.Child("order.seed")
		warm.SetStr("kind", "warm")
		if cost, feasible := s.seedOrdering(order, ranks); feasible {
			s.mu.Lock()
			s.stats.WarmStart = true
			s.stats.WarmCost = cost
			s.mu.Unlock()
			warm.SetFloat("cost", cost)
		}
		warm.End()
	}
	dive := s.trace.Child("order.seed")
	dive.SetStr("kind", "dive")
	s.dive()
	dive.End()

	par := s.opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	pq := &nodeHeap{{key: "", par: s.rootPS}}
	heap.Init(pq)
	for pq.Len() > 0 {
		// Deadline poll, once per expansion round: a tripped token stops
		// the walk here and ships the incumbent as a degraded plan.
		if s.opts.Cancel.Cancelled() {
			s.mu.Lock()
			s.cancelled = true
			s.mu.Unlock()
			break
		}
		// Pop up to par surviving nodes and evaluate them concurrently;
		// their shared prefix work dedupes through the once-guarded memos.
		// A node whose provisional bound already exceeds the incumbent dies
		// here, BEFORE its DP step runs — with a warm-started incumbent this
		// fires from the very first expansion round.
		var batch []*obNode
		for len(batch) < par && pq.Len() > 0 {
			if s.opts.Cancel.Cancelled() {
				break
			}
			n := heap.Pop(pq).(*obNode)
			s.mu.Lock()
			prune := s.shouldPrune(n.bound)
			s.mu.Unlock()
			if !prune && len(n.steps) > 0 {
				// Re-bound against the CURRENT memo state before paying
				// for the node's DP step: realized δs learned since this
				// node was pushed (the warm-start chain above all) often
				// lift the parent-scope bound past the incumbent. All the
				// ingredients are memoized, so this costs map lookups.
				b, err := s.boundAt(n.par, n.parKey, n.gPar, s.remaining(n.ranks[:len(n.ranks)-1]))
				if err == nil {
					s.mu.Lock()
					prune = s.shouldPrune(b)
					s.mu.Unlock()
				}
			}
			if prune {
				s.mu.Lock()
				s.stats.Pruned++
				s.mu.Unlock()
				s.pruneSpan(n.key, n.bound)
				continue
			}
			batch = append(batch, n)
		}
		children := make([][]*obNode, len(batch))
		if len(batch) == 1 {
			children[0] = s.process(batch[0])
		} else {
			var wg sync.WaitGroup
			for i, n := range batch {
				wg.Add(1)
				go func(i int, n *obNode) {
					defer wg.Done()
					children[i] = s.process(n)
				}(i, n)
			}
			wg.Wait()
		}
		for _, cs := range children {
			for _, c := range cs {
				heap.Push(pq, c)
			}
		}
	}

	if !s.bestSet && !s.cancelled {
		// Total infeasibility: the lazy walk may have died at the very
		// first bound query, leaving a single reason where the user needs
		// every distinct one (which factor fails at which shapes). Sweep
		// the memoized factor-prefix tree collecting the rest — this runs
		// only when no ordering can host the topology, and each distinct
		// factor prefix costs at most one memoized DP. A cancelled search
		// skips the sweep: it proved nothing, and the sweep runs DP steps
		// the deadline just declined to pay for.
		s.diagnose()
	}
	s.stats.BestCost = s.bestCost
	if s.trace.Enabled() {
		s.trace.SetInt("orderings", int64(s.stats.Orderings))
		s.trace.SetInt("expanded", int64(s.stats.Expanded))
		s.trace.SetInt("pruned", int64(s.stats.Pruned))
		s.trace.SetInt("dp_solves", int64(s.stats.DPSolves))
		s.trace.SetInt("leaves", int64(s.stats.Leaves))
		s.trace.SetFloat("best_cost", s.bestCost)
	}
	if s.opts.Stats != nil {
		*s.opts.Stats = s.stats
	}
	if !s.bestSet {
		if s.cancelled {
			return nil, cancel.Reason(s.opts.Cancel.Err(), "recursive: cancelled before any ordering completed")
		}
		return nil, infeasibleTopoErr(s.tp, s.errs.errs)
	}
	return s.buildPlan()
}

// diagnose walks every distinct factor prefix (levels collapse: DP shapes
// depend only on the factor sequence) and records each prefix's
// infeasibility reason, so a fully infeasible topology reports every
// distinct failing shape — matching the exhaustive engine — instead of just
// the first bound error the pruned walk happened to hit. Infeasible
// branches stop descending, so the sweep touches exactly the feasible
// prefix frontier plus its failing fringe.
func (s *orderSearch) diagnose() {
	fc := map[int64]int{}
	var factors []int64
	for i, fl := range s.uniq {
		if fc[fl.f] == 0 {
			factors = append(factors, fl.f)
		}
		fc[fl.f] += s.counts[i]
	}
	depth := len(s.pool)
	var walk func(ps *prefixState, key string, placed int)
	walk = func(ps *prefixState, key string, placed int) {
		if placed == depth {
			return
		}
		for _, f := range factors {
			if fc[f] == 0 {
				continue
			}
			ck := childKey(key, f)
			cps := s.prefixFor(ps, ck, f)
			if cps.err != nil {
				s.addErr(cps.err)
				continue
			}
			fc[f]--
			walk(cps, ck, placed+1)
			fc[f]++
		}
	}
	walk(s.rootPS, "", 0)
}

// buildPlan materializes the winning ordering from the shared prefix memos —
// no DP re-runs; the assembled steps are the exact Results the exhaustive
// enumeration's runSteps would have produced.
func (s *orderSearch) buildPlan() (*plan.Plan, error) {
	p := &plan.Plan{K: s.k}
	ps := s.rootPS
	key := ""
	mult := int64(1)
	for _, fl := range s.bestSteps {
		key = childKey(key, fl.f)
		s.mu.Lock()
		ps = s.prefixes[key]
		s.mu.Unlock()
		if ps == nil || ps.err != nil || ps.res == nil {
			return nil, fmt.Errorf("recursive: internal: winning prefix %q lost", key)
		}
		res := ps.res
		p.Steps = append(p.Steps, &plan.Step{
			K:          fl.f,
			Multiplier: mult,
			VarCut:     res.VarCut,
			TensorCut:  res.TensorCut,
			OpStrategy: res.OpStrategy,
			OpComm:     res.OpComm,
			CommBytes:  res.CommBytes,
			States:     res.States,
			Configs:    res.Configs,
			Level:      fl.level,
		})
		mult *= fl.f
	}
	p.FinalShapes = ps.shapes
	// A walk the deadline stopped ships its incumbent — a real, feasible
	// plan, just not a proven optimum — under the Degraded marker.
	p.Degraded = s.cancelled
	return p, nil
}

// infeasibleTopoErr joins the distinct infeasibility reasons (sorted for
// determinism) under the search's banner error.
func infeasibleTopoErr(tp topo.Topology, errs []error) error {
	sorted := append([]error(nil), errs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Error() < sorted[j].Error() })
	joined := errors.Join(sorted...)
	if joined == nil {
		joined = errors.New("no factor-to-level orderings enumerated")
	}
	return fmt.Errorf("recursive: no feasible factor-to-level ordering for topology %q: %w",
		tp.Name, joined)
}

// maxOrderingSpace bounds the factor-to-level ordering spaces the exact
// search accepts — far past every plausible machine (a 1024-GPU 3-level
// cluster has 840 orderings) but low enough that a pathological
// user-supplied topology fails fast with a clear error instead of pinning a
// worker for hours. Unlike the retired 96-ordering cap this is LOUD: no
// silent truncation, the caller is told to use TopologyNaive or explicit
// Factors.
const maxOrderingSpace = 1 << 17

// multinomial counts the distinct permutations of a multiset given the
// multiplicities of its distinct elements, saturating at
// maxOrderingSpace+1 (which also keeps the arithmetic far from overflow).
func multinomial(counts []int) int {
	n := 0
	r := 1
	for _, c := range counts {
		for i := 1; i <= c; i++ {
			n++
			if r <= maxOrderingSpace {
				r = r * n / i // n!/(i!·(n-i)!) stays integral at every prefix
			}
		}
	}
	if r > maxOrderingSpace {
		return maxOrderingSpace + 1
	}
	return r
}

// poolCounts collapses a canonical pool into distinct-element
// multiplicities (pool arrives grouped — see topoPool).
func poolCounts(pool []factorLevel) []int {
	var counts []int
	for i, fl := range pool {
		if i > 0 && pool[i-1] == fl {
			counts[len(counts)-1]++
		} else {
			counts = append(counts, 1)
		}
	}
	return counts
}

// nodeHeap orders nodes by (bound, rank-lex) — a deterministic total order.
type nodeHeap []*obNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return lexLess(h[i].ranks, h[j].ranks)
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*obNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
