package recursive

// This file implements the topology-aware ordering search as best-first
// branch and bound over the prefix tree of factor-to-level orderings
// (replacing the flat enumeration that re-ran the whole recursive DP once
// per ordering). Two observations make the tree cheap:
//
//  1. Prefix sharing. A step's DP result depends only on the FACTOR prefix
//     before it — the levels merely weight the accumulated cost — so every
//     distinct factor prefix runs dp.Solve exactly once and all orderings
//     passing through it reuse the result and the divided shapes. A machine
//     whose levels factor into all 2s (every power-of-two cluster) collapses
//     the entire search to one DP run per recursion depth.
//
//  2. Admissible bounds. For a node with prefix P, every not-yet-placed
//     factor f must eventually run a step whose δ is at least
//     dp.LowerBound(f, shapes after P): costs are priced at original shapes
//     (Lemma 1) and shapes only shrink below P, so strategies and cut
//     dimensions can only disappear. Dividing each remaining pair's bound by
//     its own level's bandwidth (the pair's level is fixed by the machine,
//     not a choice) gives h(P) ≤ true remaining cost, and any node with
//     g(P)+h(P) above the incumbent can only lead to strictly worse
//     orderings.
//
// Pruning uses a strict comparison (plus an ulp-scale slack for float
// summation-order noise), so every ordering that could tie the optimum is
// still explored; ties then break by the exhaustive enumeration's order.
// The chosen plan is therefore byte-identical to the flat enumeration
// wherever that search is feasible — the differential test in
// ordering_test.go locks this in — while the DP executions drop from
// O(orderings × depth) to O(distinct factor prefixes).

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"tofu/internal/coarsen"
	"tofu/internal/dp"
	"tofu/internal/graph"
	"tofu/internal/plan"
	"tofu/internal/shape"
	"tofu/internal/topo"
)

// SearchStats reports the effort of one topology-aware ordering search;
// Options.Stats receives a copy when non-nil. The plan itself is
// deterministic at any Parallelism; the node counters can vary slightly
// with the expansion schedule when Parallelism > 1.
type SearchStats struct {
	// Orderings is the search-space size: every distinct factor-to-level
	// ordering of the machine's pool.
	Orderings int `json:"orderings"`
	// Leaves is how many complete orderings were actually costed.
	Leaves int `json:"leaves"`
	// Expanded and Pruned count branch-and-bound tree nodes expanded vs
	// discarded because their admissible bound exceeded the incumbent.
	Expanded int `json:"expanded"`
	Pruned   int `json:"pruned"`
	// DPSolves is the number of per-step DP executions actually run — one
	// per distinct factor prefix reached. FlatDPSolves is what the flat
	// enumeration would have run for the same space (orderings × depth).
	DPSolves     int `json:"dp_solves"`
	FlatDPSolves int `json:"flat_dp_solves"`
	// LBQueries counts admissible lower-bound evaluations (dp.LowerBound).
	LBQueries int `json:"lb_queries"`
	// BestCost is the winning bandwidth-weighted communication time Σ δ/B
	// in seconds.
	BestCost float64 `json:"best_cost"`
}

// prefixState is the per-factor-prefix memo node: the DP result of the
// prefix's last step and the tensor shapes after it, computed exactly once
// however many orderings share the prefix.
type prefixState struct {
	once   sync.Once
	parent *prefixState
	factor int64

	res    *dp.Result
	shapes map[int]shape.Shape
	err    error

	// lastDelta maps factor -> the realized δ of that factor's most recent
	// occurrence in this prefix. Shapes only shrink down a branch, so a
	// later step with the same factor can only cost more — a second, often
	// much tighter admissible bound the expansion maxes with dp.LowerBound.
	lastDelta map[int64]float64

	// lb memoizes dp.LowerBound per candidate next factor at these shapes;
	// the prepared evaluators are handed to the child's Solve via EvalReuse.
	lbMu sync.Mutex
	lb   map[int64]*lbQuery
}

type lbQuery struct {
	once  sync.Once
	delta float64
	reuse *dp.EvalReuse
	err   error
}

// obNode is one branch-and-bound tree node: a (factor, level) prefix with
// its accumulated weighted cost and admissible total bound.
type obNode struct {
	steps []factorLevel
	ranks []uint8 // rank sequence in canonical pool order — the lex tie-break
	key   string  // factor-prefix memo key
	ps    *prefixState
	g     float64 // Σ δ_i/B_i over steps
	bound float64 // g + admissible remaining-cost bound
}

// orderSearch carries one branch-and-bound run.
type orderSearch struct {
	g     *graph.Graph
	c     *coarsen.Coarse
	k     int64
	tp    topo.Topology
	opts  Options
	cache *dp.PriceCache

	// uniq/counts are the distinct (factor, level) pairs in canonical order
	// (level ascending, factor descending — the flat enumeration's order)
	// with their multiplicities; pool is uniq expanded, i.e. the naive
	// hierarchy-following ordering.
	uniq   []factorLevel
	counts []int
	pool   []factorLevel
	rootPS *prefixState

	mu        sync.Mutex
	prefixes  map[string]*prefixState
	bestSet   bool
	bestCost  float64
	bestSteps []factorLevel
	bestRanks []uint8
	errs      errCollector
	stats     SearchStats
}

// errCollector deduplicates infeasibility reasons by message; both search
// engines report through it so a fully infeasible topology reads the same
// either way. Not safe for concurrent use — callers hold their own lock.
type errCollector struct {
	seen map[string]struct{}
	errs []error
}

func (c *errCollector) add(err error) {
	if c.seen == nil {
		c.seen = map[string]struct{}{}
	}
	msg := err.Error()
	if _, ok := c.seen[msg]; !ok {
		c.seen[msg] = struct{}{}
		c.errs = append(c.errs, err)
	}
}

func newOrderSearch(g *graph.Graph, c *coarsen.Coarse, k int64, tp topo.Topology,
	opts Options, cache *dp.PriceCache, pool []factorLevel) *orderSearch {

	s := &orderSearch{
		g: g, c: c, k: k, tp: tp, opts: opts, cache: cache,
		prefixes: map[string]*prefixState{},
	}
	// pool arrives in canonical order (topoPool); collapse runs into
	// uniq/counts.
	for _, fl := range pool {
		if n := len(s.uniq); n > 0 && s.uniq[n-1] == fl {
			s.counts[n-1]++
		} else {
			s.uniq = append(s.uniq, fl)
			s.counts = append(s.counts, 1)
		}
	}
	s.pool = pool

	// Root: original shapes, cloned into one slab the per-prefix divisions
	// never touch (each child clones again before dividing).
	s.rootPS = &prefixState{shapes: cloneShapes(g, nil), lb: map[int64]*lbQuery{}}
	s.prefixes[""] = s.rootPS
	return s
}

// cloneShapes copies every tensor's current shape (src nil = the graph's
// original shapes) into a fresh slab-backed map safe to divide in place.
func cloneShapes(g *graph.Graph, src map[int]shape.Shape) map[int]shape.Shape {
	total := 0
	for _, t := range g.Tensors {
		total += t.Shape.Rank()
	}
	slab := make([]int64, 0, total)
	out := make(map[int]shape.Shape, len(g.Tensors))
	for _, t := range g.Tensors {
		cur := shape.Shape(t.Shape)
		if src != nil {
			cur = src[t.ID]
		}
		start := len(slab)
		slab = append(slab, cur...)
		out[t.ID] = shape.Shape(slab[start:len(slab):len(slab)])
	}
	return out
}

// prefixFor returns the memoized state for parent's prefix extended by
// factor f, running its DP step on first use.
func (s *orderSearch) prefixFor(parent *prefixState, key string, f int64) *prefixState {
	s.mu.Lock()
	ps, ok := s.prefixes[key]
	if !ok {
		ps = &prefixState{parent: parent, factor: f, lb: map[int64]*lbQuery{}}
		s.prefixes[key] = ps
	}
	s.mu.Unlock()
	ps.once.Do(func() { s.computeStep(ps) })
	return ps
}

// computeStep runs one prefix's DP step: lower-bound first (it prepares the
// slot evaluators the Solve then reuses, and detects infeasibility before
// any frontier sweep), then the sweep, then the shape division.
func (s *orderSearch) computeStep(ps *prefixState) {
	par := ps.parent
	if par.err != nil {
		ps.err = par.err
		return
	}
	_, reuse, err := s.lowerBoundFor(par, ps.factor)
	if err != nil {
		ps.err = err
		return
	}
	res, err := dp.Solve(&dp.Problem{
		Coarse:         s.c,
		K:              ps.factor,
		Shapes:         par.shapes,
		DType:          s.opts.DType,
		StrategyFilter: s.opts.StrategyFilter,
		MaxStates:      s.opts.MaxStates,
		Parallelism:    s.opts.Parallelism,
		Cache:          s.cache,
		Reuse:          reuse,
	})
	if err != nil {
		ps.err = err
		return
	}
	s.mu.Lock()
	s.stats.DPSolves++
	s.mu.Unlock()
	shapes := cloneShapes(s.g, par.shapes)
	for tid, dim := range res.TensorCut {
		if dim < 0 {
			continue
		}
		if err := shapes[tid].SplitInPlace(dim, ps.factor); err != nil {
			ps.err = fmt.Errorf("recursive: splitting tensor %d: %w", tid, err)
			return
		}
	}
	last := make(map[int64]float64, len(par.lastDelta)+1)
	for f, d := range par.lastDelta {
		last[f] = d
	}
	last[ps.factor] = res.CommBytes
	ps.res, ps.shapes, ps.lastDelta = res, shapes, last
}

// lowerBoundFor memoizes the admissible per-step bound for factor f at the
// prefix's shapes. An error means no step with factor f can ever run at or
// below this prefix (divisibility and strategy gates are monotone), so the
// whole subtree still owing f is infeasible.
func (s *orderSearch) lowerBoundFor(ps *prefixState, f int64) (float64, *dp.EvalReuse, error) {
	ps.lbMu.Lock()
	q, ok := ps.lb[f]
	if !ok {
		q = &lbQuery{}
		ps.lb[f] = q
	}
	ps.lbMu.Unlock()
	q.once.Do(func() {
		q.reuse = &dp.EvalReuse{}
		q.delta, q.err = dp.LowerBound(&dp.Problem{
			Coarse:         s.c,
			K:              f,
			Shapes:         ps.shapes,
			DType:          s.opts.DType,
			StrategyFilter: s.opts.StrategyFilter,
			MaxStates:      s.opts.MaxStates,
			Parallelism:    s.opts.Parallelism,
			Cache:          s.cache,
		}, q.reuse)
		s.mu.Lock()
		s.stats.LBQueries++
		s.mu.Unlock()
	})
	return q.delta, q.reuse, q.err
}

// pruneSlack absorbs float summation-order noise between a node's bound and
// a leaf's accumulated cost: the bound sums lb/B terms in pool order while
// leaves accumulate δ/B in step order, so an exact tie can round apart by a
// few ulps. The slack is far below any real cost gap and only ever KEEPS a
// branch, so byte-identity with the exhaustive enumeration is preserved.
func pruneSlack(cost float64) float64 {
	s := 1e-9 * cost
	if s < 1e-12 {
		s = 1e-12
	}
	return s
}

// shouldPrune reports whether a bound is provably worse than the incumbent.
func (s *orderSearch) shouldPrune(bound float64) bool {
	return s.bestSet && bound > s.bestCost+pruneSlack(s.bestCost)
}

// offerLeaf considers a complete feasible ordering for the incumbent. Ties
// keep the rank-lexicographically smallest ordering — exactly the first one
// the exhaustive enumeration (strict-improvement scan in lex order) keeps.
func (s *orderSearch) offerLeaf(steps []factorLevel, ranks []uint8, cost float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Leaves++
	if !s.bestSet || cost < s.bestCost ||
		(cost == s.bestCost && lexLess(ranks, s.bestRanks)) {
		s.bestSet = true
		s.bestCost = cost
		s.bestSteps = steps
		s.bestRanks = ranks
	}
}

func (s *orderSearch) addErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errs.add(err)
}

// lexLess compares rank sequences lexicographically (a strict prefix sorts
// first).
func lexLess(a, b []uint8) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func childKey(key string, f int64) string {
	return key + strconv.FormatInt(f, 10) + "."
}

// expand generates a node's surviving children in canonical order: one per
// distinct remaining (factor, level) pair. Complete children go straight to
// the incumbent; infeasible ones record their reason and vanish with their
// whole subtree.
func (s *orderSearch) expand(n *obNode) []*obNode {
	rem := make([]int, len(s.counts))
	copy(rem, s.counts)
	for _, r := range n.ranks {
		rem[r]--
	}
	var children []*obNode
	for i, fl := range s.uniq {
		if rem[i] == 0 {
			continue
		}
		key := childKey(n.key, fl.f)
		ps := s.prefixFor(n.ps, key, fl.f)
		if ps.err != nil {
			s.addErr(ps.err)
			continue
		}
		g := n.g + ps.res.CommBytes/s.tp.LevelBandwidth(fl.level)
		steps := append(append(make([]factorLevel, 0, len(n.steps)+1), n.steps...), fl)
		ranks := append(append(make([]uint8, 0, len(n.ranks)+1), n.ranks...), uint8(i))
		if len(steps) == len(s.pool) {
			s.offerLeaf(steps, ranks, g)
			continue
		}
		// Admissible remaining cost: every still-unplaced pair costs at
		// least its factor's lower bound at the child's shapes — or, when
		// the same factor already ran in this prefix, at least that step's
		// realized δ (per-step optima are monotone down a branch) — over its
		// own level's bandwidth.
		h := 0.0
		feasible := true
		for j, fl2 := range s.uniq {
			left := rem[j]
			if j == i {
				left--
			}
			if left == 0 {
				continue
			}
			lb, _, err := s.lowerBoundFor(ps, fl2.f)
			if err != nil {
				s.addErr(err)
				feasible = false
				break
			}
			// The realized-δ tightening relies on per-step optima being
			// monotone down a branch, which beam search voids: a later
			// same-factor beam result over a smaller state space can land
			// below an earlier step's beam cost. dp.LowerBound alone stays
			// admissible against beam results (it bounds the true optimum,
			// which the beam never beats).
			if s.opts.MaxStates == 0 {
				if d := ps.lastDelta[fl2.f]; d > lb {
					lb = d
				}
			}
			h += float64(left) * lb / s.tp.LevelBandwidth(fl2.level)
		}
		if !feasible {
			continue
		}
		children = append(children, &obNode{
			steps: steps, ranks: ranks, key: key, ps: ps, g: g, bound: g + h,
		})
	}
	return children
}

// dive evaluates the naive hierarchy-following ordering (the pool itself,
// the rank-lex-first leaf) to seed the incumbent before any best-first
// expansion; its prefix states are the ones the tree reuses first. The leaf
// count is left to the tree walk, which revisits this ordering through
// shared prefixes at zero DP cost.
func (s *orderSearch) dive() {
	ps := s.rootPS
	key := ""
	g := 0.0
	for _, fl := range s.pool {
		key = childKey(key, fl.f)
		ps = s.prefixFor(ps, key, fl.f)
		if ps.err != nil {
			s.addErr(ps.err)
			return
		}
		g += ps.res.CommBytes / s.tp.LevelBandwidth(fl.level)
	}
	ranks := make([]uint8, 0, len(s.pool))
	for i := range s.uniq {
		for c := 0; c < s.counts[i]; c++ {
			ranks = append(ranks, uint8(i))
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.bestSet {
		s.bestSet = true
		s.bestCost = g
		s.bestSteps = s.pool
		s.bestRanks = ranks
	}
}

// run drains the branch-and-bound tree and assembles the winning plan.
func (s *orderSearch) run() (*plan.Plan, error) {
	s.stats.Orderings = multinomial(s.counts)
	s.stats.FlatDPSolves = s.stats.Orderings * len(s.pool)

	s.dive()

	par := s.opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	pq := &nodeHeap{{key: "", ps: s.rootPS}}
	heap.Init(pq)
	for pq.Len() > 0 {
		// Pop up to par surviving nodes and expand them concurrently; their
		// shared prefix work dedupes through the once-guarded memos.
		var batch []*obNode
		for len(batch) < par && pq.Len() > 0 {
			n := heap.Pop(pq).(*obNode)
			s.mu.Lock()
			if s.shouldPrune(n.bound) {
				s.stats.Pruned++
				s.mu.Unlock()
				continue
			}
			s.stats.Expanded++
			s.mu.Unlock()
			batch = append(batch, n)
		}
		children := make([][]*obNode, len(batch))
		if len(batch) == 1 {
			children[0] = s.expand(batch[0])
		} else {
			var wg sync.WaitGroup
			for i, n := range batch {
				wg.Add(1)
				go func(i int, n *obNode) {
					defer wg.Done()
					children[i] = s.expand(n)
				}(i, n)
			}
			wg.Wait()
		}
		for _, cs := range children {
			for _, c := range cs {
				s.mu.Lock()
				pruned := s.shouldPrune(c.bound)
				if pruned {
					s.stats.Pruned++
				}
				s.mu.Unlock()
				if !pruned {
					heap.Push(pq, c)
				}
			}
		}
	}

	s.stats.BestCost = s.bestCost
	if s.opts.Stats != nil {
		*s.opts.Stats = s.stats
	}
	if !s.bestSet {
		return nil, infeasibleTopoErr(s.tp, s.errs.errs)
	}
	return s.buildPlan()
}

// buildPlan materializes the winning ordering from the shared prefix memos —
// no DP re-runs; the assembled steps are the exact Results the exhaustive
// enumeration's runSteps would have produced.
func (s *orderSearch) buildPlan() (*plan.Plan, error) {
	p := &plan.Plan{K: s.k}
	ps := s.rootPS
	key := ""
	mult := int64(1)
	for _, fl := range s.bestSteps {
		key = childKey(key, fl.f)
		s.mu.Lock()
		ps = s.prefixes[key]
		s.mu.Unlock()
		if ps == nil || ps.err != nil || ps.res == nil {
			return nil, fmt.Errorf("recursive: internal: winning prefix %q lost", key)
		}
		res := ps.res
		p.Steps = append(p.Steps, &plan.Step{
			K:          fl.f,
			Multiplier: mult,
			VarCut:     res.VarCut,
			TensorCut:  res.TensorCut,
			OpStrategy: res.OpStrategy,
			OpComm:     res.OpComm,
			CommBytes:  res.CommBytes,
			States:     res.States,
			Configs:    res.Configs,
			Level:      fl.level,
		})
		mult *= fl.f
	}
	p.FinalShapes = ps.shapes
	return p, nil
}

// infeasibleTopoErr joins the distinct infeasibility reasons (sorted for
// determinism) under the search's banner error.
func infeasibleTopoErr(tp topo.Topology, errs []error) error {
	sorted := append([]error(nil), errs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Error() < sorted[j].Error() })
	joined := errors.Join(sorted...)
	if joined == nil {
		joined = errors.New("no factor-to-level orderings enumerated")
	}
	return fmt.Errorf("recursive: no feasible factor-to-level ordering for topology %q: %w",
		tp.Name, joined)
}

// maxOrderingSpace bounds the factor-to-level ordering spaces the exact
// search accepts — far past every plausible machine (a 1024-GPU 3-level
// cluster has 840 orderings) but low enough that a pathological
// user-supplied topology fails fast with a clear error instead of pinning a
// worker for hours. Unlike the retired 96-ordering cap this is LOUD: no
// silent truncation, the caller is told to use TopologyNaive or explicit
// Factors.
const maxOrderingSpace = 1 << 17

// multinomial counts the distinct permutations of a multiset given the
// multiplicities of its distinct elements, saturating at
// maxOrderingSpace+1 (which also keeps the arithmetic far from overflow).
func multinomial(counts []int) int {
	n := 0
	r := 1
	for _, c := range counts {
		for i := 1; i <= c; i++ {
			n++
			if r <= maxOrderingSpace {
				r = r * n / i // n!/(i!·(n-i)!) stays integral at every prefix
			}
		}
	}
	if r > maxOrderingSpace {
		return maxOrderingSpace + 1
	}
	return r
}

// poolCounts collapses a canonical pool into distinct-element
// multiplicities (pool arrives grouped — see topoPool).
func poolCounts(pool []factorLevel) []int {
	var counts []int
	for i, fl := range pool {
		if i > 0 && pool[i-1] == fl {
			counts[len(counts)-1]++
		} else {
			counts = append(counts, 1)
		}
	}
	return counts
}

// nodeHeap orders nodes by (bound, rank-lex) — a deterministic total order.
type nodeHeap []*obNode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return lexLess(h[i].ranks, h[j].ranks)
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*obNode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
