package recursive

import (
	"bytes"
	"testing"

	"tofu/internal/models"
	"tofu/internal/plan"
	"tofu/internal/topo"
)

// warmSteps extracts the ordering a finished plan realized, in the JSON
// form the serving layer's neighbor index persists.
func warmSteps(p *plan.Plan) []WarmStep {
	out := make([]WarmStep, 0, len(p.Steps))
	for _, st := range p.Steps {
		out = append(out, WarmStep{Factor: st.K, Level: st.Level})
	}
	return out
}

func TestWarmOrderFromSteps(t *testing.T) {
	tp, err := topo.Profile("cluster-4x2x12")
	if err != nil {
		t.Fatal(err)
	}
	pool := topoPool(tp)

	// Round-trip: a machine's own ordering maps back to itself exactly.
	self := make([]WarmStep, len(pool))
	for i, fl := range pool {
		self[i] = WarmStep{Factor: fl.f, Level: fl.level}
	}
	got := WarmOrderFromSteps(tp, self)
	if len(got) != len(self) {
		t.Fatalf("round-trip length %d, want %d", len(got), len(self))
	}
	for i := range got {
		if got[i] != self[i] {
			t.Errorf("round-trip step %d: got %+v, want %+v", i, got[i], self[i])
		}
	}

	// Cross-machine: a neighbor that never placed a 3 (e.g. answered on an
	// all-2s machine with more levels) still yields a full permutation of
	// THIS pool — the 2s claim nearest levels, the owed 3 is appended.
	neighbor := []WarmStep{
		{Factor: 2, Level: 3}, {Factor: 2, Level: 2},
		{Factor: 2, Level: 1}, {Factor: 2, Level: 0},
	}
	got = WarmOrderFromSteps(tp, neighbor)
	if len(got) != len(pool) {
		t.Fatalf("cross-machine seed has %d steps, want %d", len(got), len(pool))
	}
	counts := map[factorLevel]int{}
	for _, fl := range pool {
		counts[fl]++
	}
	for _, ws := range got {
		counts[factorLevel{f: ws.Factor, level: ws.Level}]--
	}
	for fl, c := range counts {
		if c != 0 {
			t.Errorf("cross-machine seed is not a pool permutation: %+v off by %d", fl, c)
		}
	}

	// Machines with no ordering search to seed return nil.
	flat := topo.FlatTopology(topo.DefaultHW())
	flat.HW.NumGPUs = 2
	flat.Levels[0].GroupSize = 2
	if ws := WarmOrderFromSteps(flat, self); ws != nil {
		t.Errorf("single-pair machine: want nil seed, got %v", ws)
	}
}

// warmCases pairs every built-in profile with a model feasible on it. This
// is the satellite-d matrix: warm-started search must be byte-identical to
// cold on every one of them, at every parallelism.
func warmCases(t *testing.T) []struct {
	tp  topo.Topology
	cfg models.Config
} {
	t.Helper()
	small := map[string]models.Config{
		"p2.8xlarge":     {Family: "rnn", Depth: 2, Width: 1500, Batch: 64},
		"dgx1":           {Family: "rnn", Depth: 2, Width: 1500, Batch: 64},
		"dgx2":           {Family: "rnn", Depth: 2, Width: 3000, Batch: 64},
		"cluster-2x8":    {Family: "rnn", Depth: 2, Width: 1500, Batch: 64},
		"cluster-4x2x8":  {Family: "mlp", Depth: 3, Width: 2048, Batch: 128},
		"cluster-4x2x12": {Family: "rnn", Depth: 4, Width: 3000, Batch: 96},
	}
	big := map[string]models.Config{
		"cluster-8x2x8":    {Family: "rnn", Depth: 2, Width: 8192, Batch: 256},
		"cluster-2x4x2x12": {Family: "transformer", Depth: 2, Width: 1536, Batch: 24},
		"cluster-2x8x2x8":  {Family: "mlp", Depth: 3, Width: 3072, Batch: 48},
	}
	var cases []struct {
		tp  topo.Topology
		cfg models.Config
	}
	add := func(m map[string]models.Config) {
		for _, name := range topo.ProfileNames() {
			cfg, ok := m[name]
			if !ok {
				continue
			}
			tp, err := topo.Profile(name)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, struct {
				tp  topo.Topology
				cfg models.Config
			}{tp, cfg})
		}
	}
	add(small)
	if !testing.Short() {
		add(big)
	}
	return cases
}

// TestWarmStartByteIdentical is the warm-start contract (satellite d of the
// fleet-serving PR): seeding the incumbent — whether with the optimal
// ordering, a deliberately bad one, or garbage — never changes the chosen
// plan's bytes, on every built-in profile at parallelism 1, 2, and 8.
func TestWarmStartByteIdentical(t *testing.T) {
	for _, c := range warmCases(t) {
		m, err := models.Build(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		k := int64(c.tp.NumGPUs())
		cold, err := Partition(m.G, k, Options{Topology: &c.tp, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s/%s: cold: %v", c.tp.Name, c.cfg, err)
		}
		coldJSON := planBytes(t, cold)
		self := warmSteps(cold)
		worst := make([]WarmStep, len(self))
		for i := range self {
			worst[i] = self[len(self)-1-i]
		}
		// Non-hierarchical profiles (p2.8xlarge) have no ordering search:
		// seeds are inert there and WarmStart stays unset.
		seedable := c.tp.Hierarchical() && len(self) > 1
		seeds := []struct {
			name  string
			steps []WarmStep
			valid bool
		}{
			{"self", WarmOrderFromSteps(c.tp, self), seedable},
			{"reversed", WarmOrderFromSteps(c.tp, worst), seedable},
			{"garbage", []WarmStep{{Factor: 7, Level: 99}}, false},
		}
		for _, seed := range seeds {
			for _, par := range []int{1, 2, 8} {
				var st SearchStats
				p, err := Partition(m.G, k, Options{
					Topology: &c.tp, Parallelism: par, Stats: &st, WarmStart: seed.steps,
				})
				if err != nil {
					t.Fatalf("%s/%s seed=%s par=%d: %v", c.tp.Name, c.cfg, seed.name, par, err)
				}
				if !bytes.Equal(planBytes(t, p), coldJSON) {
					t.Errorf("%s/%s seed=%s par=%d: warm plan differs from cold plan",
						c.tp.Name, c.cfg, seed.name, par)
				}
				if st.WarmStart != seed.valid {
					t.Errorf("%s/%s seed=%s par=%d: WarmStart=%v, want %v",
						c.tp.Name, c.cfg, seed.name, par, st.WarmStart, seed.valid)
				}
				if st.WarmStart && st.WarmCost < st.BestCost {
					t.Errorf("%s/%s seed=%s par=%d: warm seed cost %g beats best %g — seed escaped the search",
						c.tp.Name, c.cfg, seed.name, par, st.WarmCost, st.BestCost)
				}
			}
		}
	}
}

// TestWarmStartSearchEffort pins the payoff: on the two 4-level fleet
// profiles, seeding the incumbent with the previously-found optimum lets
// pruning fire from the first expansion round and at least halves the
// branch-and-bound search steps. (Prefix-DP solves are memoized per factor
// prefix and already near the floor — Expanded is where warm starts win;
// see EXPERIMENTS.md.) Measured at parallelism 1 so the counts are exact:
// cluster-2x4x2x12/transformer drops 676 -> 310, cluster-2x8x2x8/mlp
// 225 -> 103.
func TestWarmStartSearchEffort(t *testing.T) {
	if testing.Short() {
		t.Skip("search-effort pins need the full 4-level profiles")
	}
	cases := []struct {
		prof string
		cfg  models.Config
	}{
		{"cluster-2x4x2x12", models.Config{Family: "transformer", Depth: 2, Width: 1536, Batch: 24}},
		{"cluster-2x8x2x8", models.Config{Family: "mlp", Depth: 3, Width: 3072, Batch: 48}},
	}
	for _, c := range cases {
		tp, err := topo.Profile(c.prof)
		if err != nil {
			t.Fatal(err)
		}
		m, err := models.Build(c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		k := int64(tp.NumGPUs())
		var cold SearchStats
		p, err := Partition(m.G, k, Options{Topology: &tp, Parallelism: 1, Stats: &cold})
		if err != nil {
			t.Fatalf("%s: cold: %v", c.prof, err)
		}
		var warm SearchStats
		_, err = Partition(m.G, k, Options{
			Topology: &tp, Parallelism: 1, Stats: &warm,
			WarmStart: WarmOrderFromSteps(tp, warmSteps(p)),
		})
		if err != nil {
			t.Fatalf("%s: warm: %v", c.prof, err)
		}
		if !warm.WarmStart {
			t.Fatalf("%s: seed rejected", c.prof)
		}
		if warm.Expanded*2 > cold.Expanded {
			t.Errorf("%s/%s: warm start saved <2x search steps: cold %d, warm %d",
				c.prof, c.cfg, cold.Expanded, warm.Expanded)
		}
		if warm.DPSolves > cold.DPSolves {
			t.Errorf("%s/%s: warm start ADDED dp solves: cold %d, warm %d",
				c.prof, c.cfg, cold.DPSolves, warm.DPSolves)
		}
		t.Logf("%s/%s-%d-%d@%d: cold exp=%d dp=%d | warm exp=%d dp=%d (%.2fx fewer steps)",
			c.prof, c.cfg.Family, c.cfg.Depth, c.cfg.Width, c.cfg.Batch,
			cold.Expanded, cold.DPSolves, warm.Expanded, warm.DPSolves,
			float64(cold.Expanded)/float64(warm.Expanded))
	}
}
