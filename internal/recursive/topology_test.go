package recursive

import (
	"testing"

	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/models"
	"tofu/internal/sim"
	"tofu/internal/topo"
)

func simulate(t *testing.T, m *models.Model, tp topo.Topology, opts Options) (float64, float64) {
	t.Helper()
	p, err := Partition(m.G, int64(tp.NumGPUs()), opts)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := graphgen.Generate(m.G, p, graphgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(sh, tp, m.Batch, memplan.DefaultOptions(), sim.RunOptions{})
	return res.IterSeconds, res.CommSeconds
}

// TestTopologyAwareBeatsBlind is the acceptance demonstration: on the
// NVLink (dgx1) and 2x8-node cluster profiles, the topology-aware ordering
// search produces a plan with strictly lower modeled iteration time than the
// topology-blind search (whose plan gets the naive cyclic-placement layout)
// on at least one benchmark model. RNN-2-1500 is the regime where the win
// exists: its hidden dimension (1500 = 4x375) supports only two halvings, so
// one recursive step must fall back to a costlier cut, and the aware search
// keeps that heavy step off the slow link.
func TestTopologyAwareBeatsBlind(t *testing.T) {
	m, err := models.RNN(2, 1500, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []topo.Topology{topo.DGX1Topology(), topo.Cluster2x8Topology()} {
		aware, awareComm := simulate(t, m, tp, Options{Topology: &tp})
		naive, naiveComm := simulate(t, m, tp, Options{Topology: &tp, TopologyNaive: true})
		if aware >= naive {
			t.Errorf("%s: topology-aware iteration %.9fs must beat blind %.9fs", tp.Name, aware, naive)
		}
		if awareComm >= naiveComm {
			t.Errorf("%s: topology-aware comm %.9fs must beat blind %.9fs", tp.Name, awareComm, naiveComm)
		}
	}
}

// TestTopologyAwareNeverWorse: the ordering search always explores the naive
// layout too, so it can only tie or beat it in weighted communication time.
func TestTopologyAwareNeverWorse(t *testing.T) {
	m, err := models.RNN(2, 1024, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range []topo.Topology{topo.DGX1Topology(), topo.Cluster2x8Topology()} {
		awarePlan, err := Partition(m.G, int64(tp.NumGPUs()), Options{Topology: &tp})
		if err != nil {
			t.Fatal(err)
		}
		naivePlan, err := Partition(m.G, int64(tp.NumGPUs()), Options{Topology: &tp, TopologyNaive: true})
		if err != nil {
			t.Fatal(err)
		}
		if weightedComm(awarePlan, tp) > weightedComm(naivePlan, tp) {
			t.Errorf("%s: aware weighted comm exceeds naive", tp.Name)
		}
	}
}

// TestTopologyStepLevelsConsistent: a topology-searched plan's step levels
// consume exactly each level's capacity.
func TestTopologyStepLevelsConsistent(t *testing.T) {
	tp := topo.Cluster2x8Topology()
	m, err := models.RNN(2, 1024, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(m.G, 16, Options{Topology: &tp})
	if err != nil {
		t.Fatal(err)
	}
	per := map[int]int64{}
	for _, s := range p.Steps {
		if s.Level < 0 || s.Level >= len(tp.Levels) {
			t.Fatalf("step level %d out of range", s.Level)
		}
		if per[s.Level] == 0 {
			per[s.Level] = 1
		}
		per[s.Level] *= s.K
	}
	for li, l := range tp.Levels {
		if per[li] != l.GroupSize {
			t.Errorf("level %d (%s): steps multiply to %d, want %d", li, l.Name, per[li], l.GroupSize)
		}
	}
}

// TestTopologyWorkerMismatch: an explicit topology must agree with k.
func TestTopologyWorkerMismatch(t *testing.T) {
	tp := topo.DGX1Topology()
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(m.G, 4, Options{Topology: &tp}); err == nil {
		t.Fatal("8-GPU topology with k=4 must error")
	}
}

// TestEqualChopOnTopologyPricesAtOutermost: explicit factors skip the
// ordering search but still get the blind layout annotation — a single
// K-way chop crosses every level and prices at the outermost.
func TestEqualChopOnTopologyPricesAtOutermost(t *testing.T) {
	tp := topo.DGX1Topology()
	m, err := models.RNN(2, 1024, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(m.G, 8, Options{Topology: &tp, Factors: []int64{8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 1 || p.Steps[0].Level != len(tp.Levels)-1 {
		t.Fatalf("equal chop layout wrong: %d steps, level %d", len(p.Steps), p.Steps[0].Level)
	}
}
