package recursive

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"tofu/internal/cancel"
	"tofu/internal/models"
	"tofu/internal/topo"
)

// Outcomes of one poll-budgeted search.
const (
	outcomeCancelled = iota // tripped before any ordering finished
	outcomeDegraded         // best incumbent returned, marked Degraded
	outcomeComplete         // budget outlived the search: the proven optimum
)

// cancelRun is one cancellation probe: a topology ordering search under a
// poll-counted token. A degraded run returns the incumbent's plan JSON; an
// early trip must surface as a cancellation error, never a plain failure.
func cancelRun(t *testing.T, m *models.Model, tp topo.Topology, par, polls int) (int, []byte) {
	t.Helper()
	tok := cancel.AfterPolls(int64(polls))
	p, err := Partition(m.G, int64(tp.NumGPUs()), Options{Parallelism: par, Topology: &tp, Cancel: tok})
	if err != nil {
		if !cancel.IsCancellation(err) {
			t.Fatalf("polls=%d: non-cancellation error: %v", polls, err)
		}
		return outcomeCancelled, nil
	}
	if !p.Degraded {
		return outcomeComplete, nil
	}
	if len(p.Steps) == 0 {
		t.Fatalf("polls=%d: degraded plan with no steps", polls)
	}
	mult := int64(1)
	for _, st := range p.Steps {
		mult *= st.K
	}
	if mult != int64(tp.NumGPUs()) {
		t.Fatalf("polls=%d: degraded plan partitions %d ways, want %d", polls, mult, tp.NumGPUs())
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return outcomeDegraded, buf.Bytes()
}

// maxPollSweep bounds the budget sweep; the full mlp-4x512 ordering search
// on cluster-2x8 polls on the order of 10^2 times, far under this.
const maxPollSweep = 20000

// firstDegradedBudget walks the poll budget upward until the search
// degrades (returning that budget and incumbent), or completes.
func firstDegradedBudget(t *testing.T, m *models.Model, tp topo.Topology, par int) (int, []byte) {
	t.Helper()
	for n := 1; n <= maxPollSweep; n++ {
		switch outcome, js := cancelRun(t, m, tp, par, n); outcome {
		case outcomeDegraded:
			return n, js
		case outcomeComplete:
			t.Fatalf("parallelism %d: search completed at polls=%d without ever degrading", par, n)
		}
	}
	t.Fatalf("parallelism %d: no poll budget up to %d yielded a degraded incumbent", par, maxPollSweep)
	return 0, nil
}

// TestCancelMidSweepParallel8 sweeps the poll budget across the whole
// search at parallelism 8 (run under -race in CI): the outcomes must walk
// the contract's ladder — cancellation error while no incumbent exists,
// then a valid degraded incumbent, then the optimum once the budget
// outlives the search — and the worker pool must not leak goroutines on
// any early-exit path.
func TestCancelMidSweepParallel8(t *testing.T) {
	m, err := models.MLP(4, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	tp := topo.Cluster2x8Topology()
	before := runtime.NumGoroutine()

	if outcome, _ := cancelRun(t, m, tp, 8, 1); outcome != outcomeCancelled {
		t.Error("a one-poll budget must trip before any incumbent exists")
	}
	firstDegradedBudget(t, m, tp, 8) // fatals if the ladder's middle rung is missing
	if outcome, _ := cancelRun(t, m, tp, 8, maxPollSweep); outcome != outcomeComplete {
		t.Errorf("a %d-poll budget must outlive the search", maxPollSweep)
	}

	// Leak harness: cancelled searches must wind down their DP workers.
	// NumGoroutine is noisy (the runtime parks helpers lazily), so poll
	// with a deadline instead of asserting a single snapshot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across cancelled searches: %d before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDeadlineDeterministicIncumbent: the anytime search is deterministic
// in its budget — the same poll-counted tick at the same parallelism
// returns the byte-identical degraded incumbent, run after run. (Wall
// -clock deadlines cannot promise this; poll-counted tokens exist so tests
// and replayable debugging can.)
func TestDeadlineDeterministicIncumbent(t *testing.T) {
	m, err := models.MLP(4, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	tp := topo.Cluster2x8Topology()
	for _, par := range []int{1, 8} {
		polls, first := firstDegradedBudget(t, m, tp, par)
		_, again := cancelRun(t, m, tp, par, polls)
		if !bytes.Equal(first, again) {
			t.Errorf("parallelism %d, polls=%d: degraded incumbent changed between runs:\nfirst: %s\nagain: %s",
				par, polls, first, again)
		}
	}
}

// TestCancelledBeforeIncumbentIsCancellation: a token tripped on its very
// first poll must classify as a cancellation (the service maps it to 503 +
// Retry-After), not masquerade as an infeasible-topology diagnostic.
func TestCancelledBeforeIncumbentIsCancellation(t *testing.T) {
	m, err := models.MLP(4, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	tp := topo.Cluster2x8Topology()
	tok := cancel.AfterPolls(1)
	_, err = Partition(m.G, int64(tp.NumGPUs()), Options{Parallelism: 1, Topology: &tp, Cancel: tok})
	if err == nil {
		t.Fatal("first-poll cancellation returned a plan")
	}
	if !cancel.IsCancellation(err) {
		t.Fatalf("first-poll cancellation produced a non-cancellation error: %v", err)
	}
}

// TestNilTokenIsFree: the deadline-free path must pass a nil token through
// the whole stack — the same byte-identical plan as no Cancel option, and
// no arming cost.
func TestNilTokenIsFree(t *testing.T) {
	m, err := models.MLP(4, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	base := planJSON(t, m, 8, 1, nil)
	p, err := Partition(m.G, 8, Options{Parallelism: 1, Cancel: nil})
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded {
		t.Fatal("deadline-free search marked degraded")
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, buf.Bytes()) {
		t.Fatal("nil cancel token changed the plan bytes")
	}
}
