// Package recursive implements Tofu's recursive partitioning algorithm
// (EuroSys'19 Sec 5.2, Appendix A): factor the worker count k into
// k1 ≥ k2 ≥ ... ≥ km, then run the coarsened-graph DP once per factor, each
// time partitioning every tensor along a single dimension between ki worker
// groups and dividing the shapes before the next step. Theorems 1–3 show the
// greedy per-step optima compose into a globally optimal plan because every
// step's cost is a weighted sum of (current) tensor sizes.
//
//tofu:searchpath reachable from dp.Solve / recursive.Partition; nodeterm enforces determinism
package recursive

import (
	"fmt"
	"sort"

	"tofu/internal/cancel"
	"tofu/internal/coarsen"
	"tofu/internal/dp"
	"tofu/internal/graph"
	"tofu/internal/obs"
	"tofu/internal/partition"
	"tofu/internal/plan"
	"tofu/internal/shape"
	"tofu/internal/topo"
)

// Options tune the search.
type Options struct {
	// StrategyFilter restricts operator strategies (ICML18 baseline drops
	// output reduction).
	StrategyFilter func(partition.Strategy) bool
	// Factors overrides the factorization of K (EqualChop uses a single
	// K-way step).
	Factors []int64
	// DType prices communication; the benchmarks are all float32.
	DType shape.DType
	// MaxStates bounds the DP frontier per step (0 = exact search). See
	// dp.Problem.MaxStates; useful for high-cutwidth graphs such as
	// attention blocks.
	MaxStates int
	// Parallelism is the worker-goroutine count for each step's DP sweep
	// and pricing (0 = runtime.GOMAXPROCS(0), 1 = serial). The chosen plan
	// is byte-identical for every setting (see dp.Problem.Parallelism).
	Parallelism int
	// Cache reuses priced strategy enumerations across the recursive factor
	// steps and — when shared by the caller — across searches over the same
	// model (nil = one fresh cache per Partition call, which still
	// deduplicates pricing across this search's steps).
	Cache *dp.PriceCache
	// Topology switches the search into topology-driven mode on hierarchical
	// machines: the factor sequence is derived from the level group sizes,
	// every candidate factor-to-level ordering is searched, each step's DP
	// cost is weighted by its level's bandwidth, and the winning plan's
	// steps carry their level annotations. Single-level topologies (and nil)
	// reduce exactly to the flat algorithm. When Factors is also set, the
	// factors win and the resulting steps are annotated with the
	// topology-blind layout instead (topo.Topology.AssignLevels).
	Topology *topo.Topology
	// TopologyNaive skips the ordering search: the factor sequence follows
	// the hierarchy innermost first with no bandwidth weighting — the layout
	// a topology-blind runtime gets from the scheduler's default cyclic rank
	// placement, and the hierarchical-naive baseline of the cross-topology
	// experiments.
	TopologyNaive bool
	// WarmStart, when non-empty, seeds the topology-aware branch-and-bound
	// incumbent with a candidate ordering — typically
	// WarmOrderFromSteps(topology, neighbor plan's steps), the best cached
	// plan of a neighboring request re-priced on this machine. The seed's
	// prefix chain is costed first (real DP steps, shared with the tree),
	// and its cost primes the incumbent so pruning fires from the first
	// expansion. The chosen plan is byte-identical with or without a seed:
	// pruning is strict and ties still break by the exhaustive
	// enumeration's lex order. Invalid seeds (not a permutation of the
	// machine's factor-to-level pool) are ignored. Flat searches ignore
	// WarmStart entirely.
	WarmStart []WarmStep
	// TopoExhaustive forces the topology-aware search onto the flat
	// ordering enumeration (one full recursive DP per ordering) instead of
	// the branch-and-bound prefix tree. The chosen plan is byte-identical
	// either way; this is the differential-test oracle and the
	// before/after benchmark baseline, not a production mode.
	TopoExhaustive bool
	// Stats, when non-nil, receives the ordering-search effort counters of
	// a topology-aware Partition call (untouched in flat mode).
	Stats *SearchStats
	// Trace, if non-nil, records the search's span tree under the given
	// parent: "coarsen", per-factor "recursive.step" spans (each wrapping
	// its dp.Solve), and in topology-aware mode the "order.search" tree
	// with per-prefix expansion and prune spans. nil (the default) records
	// nothing and costs nothing; spans never influence the chosen plan.
	Trace *obs.Span
	// Cancel, if non-nil, is polled at every factor step and
	// branch-and-bound expansion. When it trips, the topology-aware
	// engines return their best incumbent marked plan.Degraded (the
	// anytime contract); a search with no incumbent yet — including every
	// flat single-chain search, which has nothing partial to return —
	// fails with the token's reason instead. nil (the default) is a
	// pointer comparison per poll and leaves plans byte-identical.
	Cancel *cancel.Token
}

// Partition searches for the best partition plan of a training graph across
// k workers. k = 1 yields a valid trivial plan with zero steps (every
// tensor whole on the single worker), which flows through graph generation
// and simulation unchanged.
func Partition(g *graph.Graph, k int64, opts Options) (*plan.Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("recursive: worker count %d invalid", k)
	}
	if opts.Topology != nil {
		if got := int64(opts.Topology.NumGPUs()); got != k {
			return nil, fmt.Errorf("recursive: topology %q has %d GPUs, want %d workers",
				opts.Topology.Name, got, k)
		}
		if opts.Topology.Hierarchical() && opts.Factors == nil {
			return partitionTopo(g, k, *opts.Topology, opts)
		}
	}
	factors := opts.Factors
	if factors == nil {
		factors = Factorize(k)
	}
	prod := int64(1)
	for _, f := range factors {
		if f < 2 {
			return nil, fmt.Errorf("recursive: factor %d invalid", f)
		}
		prod *= f
	}
	if prod != k {
		return nil, fmt.Errorf("recursive: factors %v do not multiply to %d", factors, k)
	}

	csp := opts.Trace.Child("coarsen")
	c, err := coarsen.Coarsen(g)
	if err != nil {
		return nil, err
	}
	csp.SetInt("groups", int64(len(c.Groups)))
	csp.End()
	cache := opts.Cache
	if cache == nil {
		cache = dp.NewPriceCache()
	}
	p, err := runSteps(g, c, k, factors, nil, opts, cache, nil)
	if err != nil {
		return nil, err
	}
	if opts.Topology != nil {
		// Explicit-factor searches (EqualChop's single chop) still run on
		// the real machine: annotate the topology-blind layout.
		opts.Topology.AssignLevels(p)
	}
	return p, nil
}

// runSteps runs the per-factor DP sequence — the body of the recursive
// algorithm. levels, when non-nil, annotates each step with the interconnect
// level its communication crosses. nSolves, when non-nil, counts the DP
// executions (the flat enumeration's search-effort metric).
func runSteps(g *graph.Graph, c *coarsen.Coarse, k int64, factors []int64, levels []int,
	opts Options, cache *dp.PriceCache, nSolves *int) (*plan.Plan, error) {

	// Current (progressively divided) shape of every tensor — clones carved
	// out of one slab, owned by this search and divided in place below.
	total := 0
	for _, t := range g.Tensors {
		total += t.Shape.Rank()
	}
	slab := make([]int64, 0, total)
	shapes := make(map[int]shape.Shape, len(g.Tensors))
	for _, t := range g.Tensors {
		start := len(slab)
		slab = append(slab, t.Shape...)
		shapes[t.ID] = shape.Shape(slab[start:len(slab):len(slab)])
	}

	p := &plan.Plan{K: k, FinalShapes: shapes}
	mult := int64(1)
	// Consecutive equal-factor steps reuse unchanged slot evaluators (same
	// Coarse, DType and filter throughout — see dp.Problem.Reuse).
	reuse := &dp.EvalReuse{}
	for i, ki := range factors {
		if opts.Cancel.Cancelled() {
			// A partial factor chain multiplies to less than k — not a plan.
			// The callers with incumbents (ordering/hybrid searches) degrade;
			// this single chain can only report why it stopped.
			return nil, cancel.Reason(opts.Cancel.Err(), "recursive: cancelled at step %d/%d", i+1, len(factors))
		}
		st := opts.Trace.Child("recursive.step")
		st.SetInt("step", int64(i+1))
		st.SetInt("factor", ki)
		if levels != nil {
			st.SetInt("level", int64(levels[i]))
		}
		res, err := dp.Solve(&dp.Problem{
			Coarse:         c,
			K:              ki,
			Shapes:         shapes,
			DType:          opts.DType,
			StrategyFilter: opts.StrategyFilter,
			MaxStates:      opts.MaxStates,
			Parallelism:    opts.Parallelism,
			Cache:          cache,
			Reuse:          reuse,
			Trace:          st,
			Cancel:         opts.Cancel,
		})
		st.End()
		if err != nil {
			return nil, fmt.Errorf("recursive: step %d (x%d): %w", len(p.Steps)+1, ki, err)
		}
		if nSolves != nil {
			*nSolves++
		}
		step := &plan.Step{
			K:          ki,
			Multiplier: mult,
			VarCut:     res.VarCut,
			TensorCut:  res.TensorCut,
			OpStrategy: res.OpStrategy,
			OpComm:     res.OpComm,
			CommBytes:  res.CommBytes,
			States:     res.States,
			Configs:    res.Configs,
		}
		if levels != nil {
			step.Level = levels[i]
		}
		p.Steps = append(p.Steps, step)
		mult *= ki

		// Divide shapes along the chosen cuts for the next step. The table
		// holds clones made above, so dividing in place is safe and spares
		// a fresh shape per (tensor, step).
		for tid, dim := range res.TensorCut {
			if dim < 0 {
				continue
			}
			if err := shapes[tid].SplitInPlace(dim, ki); err != nil {
				return nil, fmt.Errorf("recursive: splitting tensor %d: %w", tid, err)
			}
		}
	}
	return p, nil
}

// factorLevel is one recursive factor bound to the interconnect level whose
// links its step's communication crosses.
type factorLevel struct {
	f     int64
	level int
}

// partitionTopo is the topology-driven search: derive the factor multiset
// from the level group sizes and find the factor-to-level ordering
// minimizing bandwidth-weighted communication time Σ δ_i / B(level_i) —
// each step's per-step DP optimum is weight-invariant (Theorems 1-3 apply
// per step), but the ordering changes the shapes later steps see and which
// links the heavy steps cross. The default engine is the branch-and-bound
// prefix-tree search (ordering.go); TopologyNaive takes the single blind
// layout and TopoExhaustive the flat one-DP-run-per-ordering enumeration,
// both of which choose byte-identical plans to the tree wherever they
// apply.
func partitionTopo(g *graph.Graph, k int64, tp topo.Topology, opts Options) (*plan.Plan, error) {
	csp := opts.Trace.Child("coarsen")
	c, err := coarsen.Coarsen(g)
	if err != nil {
		return nil, err
	}
	csp.SetInt("groups", int64(len(c.Groups)))
	csp.End()
	cache := opts.Cache
	if cache == nil {
		cache = dp.NewPriceCache()
	}
	pool := topoPool(tp)
	if opts.TopologyNaive || len(pool) <= 1 {
		return partitionTopoFlat(g, c, k, tp, opts, cache)
	}
	// Fail loudly on pathological machines instead of searching for hours
	// (or, as the retired 96-ordering cap did, silently truncating the
	// space). No plausible machine comes near the limit.
	if n := multinomial(poolCounts(pool)); n > maxOrderingSpace {
		return nil, fmt.Errorf(
			"recursive: topology %q has over %d candidate factor-to-level orderings — beyond exact search; "+
				"set TopologyNaive for the hierarchy-following layout or supply explicit Factors",
			tp.Name, maxOrderingSpace)
	}
	if opts.TopoExhaustive {
		return partitionTopoFlat(g, c, k, tp, opts, cache)
	}
	return newOrderSearch(g, c, k, tp, opts, cache, pool).run()
}

// partitionTopoFlat is the pre-branch-and-bound search: enumerate every
// candidate ordering and run the full recursive DP on each. Infeasible
// orderings drop out of the search, but their distinct reasons are
// aggregated so a fully infeasible topology reports every way it failed,
// not just the first.
func partitionTopoFlat(g *graph.Graph, c *coarsen.Coarse, k int64, tp topo.Topology,
	opts Options, cache *dp.PriceCache) (*plan.Plan, error) {

	orderings := topoOrderings(tp, opts.TopologyNaive)
	var (
		best     *plan.Plan
		bestCost float64
		stats    SearchStats
		errs     errCollector
	)
	stats.Orderings = len(orderings)
	degraded := false
	for _, ord := range orderings {
		if opts.Cancel.Cancelled() {
			// Anytime contract: keep the best ordering costed so far and
			// mark the plan degraded rather than discarding finished work.
			degraded = true
			break
		}
		factors := make([]int64, len(ord))
		levels := make([]int, len(ord))
		for i, fl := range ord {
			factors[i] = fl.f
			levels[i] = fl.level
		}
		stats.FlatDPSolves += len(ord)
		p, err := runSteps(g, c, k, factors, levels, opts, cache, &stats.DPSolves)
		if err != nil {
			if cancel.IsCancellation(err) {
				// A cancelled chain is not an infeasible one: keep it out of
				// the diagnostics and stop the enumeration.
				degraded = true
				break
			}
			errs.add(err)
			continue
		}
		stats.Leaves++
		cost := weightedComm(p, tp)
		if best == nil || cost < bestCost {
			best, bestCost = p, cost
		}
	}
	stats.Expanded = stats.Leaves
	stats.BestCost = bestCost
	if opts.Stats != nil {
		*opts.Stats = stats
	}
	if best == nil {
		if degraded {
			return nil, cancel.Reason(opts.Cancel.Err(), "recursive: cancelled before any ordering completed")
		}
		return nil, infeasibleTopoErr(tp, errs.errs)
	}
	best.Degraded = degraded
	return best, nil
}

// CommTime is the topology objective of an annotated plan: per-step
// communication divided by the bandwidth of the level it crosses — a time,
// not a byte count. The hybrid pipeline search prices each stage's sub-plan
// with it on the stage sub-machine.
func CommTime(p *plan.Plan, tp topo.Topology) float64 {
	return weightedComm(p, tp)
}

// weightedComm is the topology objective: per-step communication divided by
// the bandwidth of the level it crosses — a time, not a byte count.
func weightedComm(p *plan.Plan, topo topo.Topology) float64 {
	t := 0.0
	for _, s := range p.Steps {
		t += s.CommBytes / topo.LevelBandwidth(s.Level)
	}
	return t
}

// topoPool lists the machine's (factor, level) pairs in canonical order:
// levels innermost first, factors largest-first inside each level. Read as
// an ordering this is the naive hierarchy-following layout a topology-blind
// runtime produces (see topo.Topology.AssignLevels), which by Theorem 2's
// monotone deltas parks the heaviest step on the slowest links.
func topoPool(tp topo.Topology) []factorLevel {
	var pool []factorLevel
	for li := range tp.Levels {
		for _, f := range Factorize(tp.Levels[li].GroupSize) {
			pool = append(pool, factorLevel{f: f, level: li})
		}
	}
	return pool
}

// topoOrderings enumerates every candidate factor-to-level sequence for the
// flat search — the branch-and-bound engine never materializes this list.
// naive yields only the hierarchy-following layout. The enumeration is
// deterministic (lexicographic in the canonical pool order), so the chosen
// plan is reproducible and the tree search's tie-break can match it.
func topoOrderings(tp topo.Topology, naive bool) [][]factorLevel {
	pool := topoPool(tp)
	if naive || len(pool) <= 1 {
		return [][]factorLevel{pool}
	}
	return multisetPerms(pool)
}

// multisetPerms lists the distinct permutations of the pool in lexicographic
// order of the canonical distinct-element ranking.
func multisetPerms(pool []factorLevel) [][]factorLevel {
	// Count multiplicities over the distinct elements, sorted for
	// determinism.
	type entry struct {
		fl    factorLevel
		count int
	}
	var uniq []entry
	for _, fl := range pool {
		found := false
		for i := range uniq {
			if uniq[i].fl == fl {
				uniq[i].count++
				found = true
				break
			}
		}
		if !found {
			uniq = append(uniq, entry{fl: fl, count: 1})
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].fl.level != uniq[j].fl.level {
			return uniq[i].fl.level < uniq[j].fl.level
		}
		return uniq[i].fl.f > uniq[j].fl.f
	})

	// Drawing each position from the distinct entries with counted
	// multiplicities emits every distinct permutation exactly once.
	var out [][]factorLevel
	cur := make([]factorLevel, 0, len(pool))
	var dfs func()
	dfs = func() {
		if len(cur) == len(pool) {
			out = append(out, append([]factorLevel(nil), cur...))
			return
		}
		for i := range uniq {
			if uniq[i].count == 0 {
				continue
			}
			uniq[i].count--
			cur = append(cur, uniq[i].fl)
			dfs()
			cur = cur[:len(cur)-1]
			uniq[i].count++
		}
	}
	dfs()
	return out
}

// Factorize decomposes k into its prime factors in non-increasing order
// (8 → [2 2 2], 12 → [3 2 2]) — the paper's k = k1*k2*...*km with
// ki >= k(i+1). k = 1 factors into the empty list: the recursion runs zero
// steps and Partition returns the trivial single-worker plan.
func Factorize(k int64) []int64 {
	var out []int64
	for f := int64(2); f*f <= k; f++ {
		for k%f == 0 {
			out = append(out, f)
			k /= f
		}
	}
	if k > 1 {
		out = append(out, k)
	}
	// Largest first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
