// Package recursive implements Tofu's recursive partitioning algorithm
// (EuroSys'19 Sec 5.2, Appendix A): factor the worker count k into
// k1 ≥ k2 ≥ ... ≥ km, then run the coarsened-graph DP once per factor, each
// time partitioning every tensor along a single dimension between ki worker
// groups and dividing the shapes before the next step. Theorems 1–3 show the
// greedy per-step optima compose into a globally optimal plan because every
// step's cost is a weighted sum of (current) tensor sizes.
package recursive

import (
	"fmt"

	"tofu/internal/coarsen"
	"tofu/internal/dp"
	"tofu/internal/graph"
	"tofu/internal/partition"
	"tofu/internal/plan"
	"tofu/internal/shape"
)

// Options tune the search.
type Options struct {
	// StrategyFilter restricts operator strategies (ICML18 baseline drops
	// output reduction).
	StrategyFilter func(partition.Strategy) bool
	// Factors overrides the factorization of K (EqualChop uses a single
	// K-way step).
	Factors []int64
	// DType prices communication; the benchmarks are all float32.
	DType shape.DType
	// MaxStates bounds the DP frontier per step (0 = exact search). See
	// dp.Problem.MaxStates; useful for high-cutwidth graphs such as
	// attention blocks.
	MaxStates int
	// Parallelism is the worker-goroutine count for each step's DP sweep
	// and pricing (0 = runtime.GOMAXPROCS(0), 1 = serial). The chosen plan
	// is byte-identical for every setting (see dp.Problem.Parallelism).
	Parallelism int
	// Cache reuses priced strategy enumerations across the recursive factor
	// steps and — when shared by the caller — across searches over the same
	// model (nil = one fresh cache per Partition call, which still
	// deduplicates pricing across this search's steps).
	Cache *dp.PriceCache
}

// Partition searches for the best partition plan of a training graph across
// k workers. k = 1 yields a valid trivial plan with zero steps (every
// tensor whole on the single worker), which flows through graph generation
// and simulation unchanged.
func Partition(g *graph.Graph, k int64, opts Options) (*plan.Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("recursive: worker count %d invalid", k)
	}
	factors := opts.Factors
	if factors == nil {
		factors = Factorize(k)
	}
	prod := int64(1)
	for _, f := range factors {
		if f < 2 {
			return nil, fmt.Errorf("recursive: factor %d invalid", f)
		}
		prod *= f
	}
	if prod != k {
		return nil, fmt.Errorf("recursive: factors %v do not multiply to %d", factors, k)
	}

	c, err := coarsen.Coarsen(g)
	if err != nil {
		return nil, err
	}

	// Current (progressively divided) shape of every tensor.
	shapes := make(map[int]shape.Shape, len(g.Tensors))
	for _, t := range g.Tensors {
		shapes[t.ID] = t.Shape.Clone()
	}

	// One cache serves every factor step: pricing happens once at original
	// shapes (Lemma 1) instead of once per dp.Solve call.
	cache := opts.Cache
	if cache == nil {
		cache = dp.NewPriceCache()
	}

	p := &plan.Plan{K: k, FinalShapes: shapes}
	mult := int64(1)
	for _, ki := range factors {
		res, err := dp.Solve(&dp.Problem{
			Coarse:         c,
			K:              ki,
			Shapes:         shapes,
			DType:          opts.DType,
			StrategyFilter: opts.StrategyFilter,
			MaxStates:      opts.MaxStates,
			Parallelism:    opts.Parallelism,
			Cache:          cache,
		})
		if err != nil {
			return nil, fmt.Errorf("recursive: step %d (x%d): %w", len(p.Steps)+1, ki, err)
		}
		step := &plan.Step{
			K:          ki,
			Multiplier: mult,
			VarCut:     res.VarCut,
			TensorCut:  res.TensorCut,
			OpStrategy: res.OpStrategy,
			OpComm:     res.OpComm,
			CommBytes:  res.CommBytes,
			States:     res.States,
			Configs:    res.Configs,
		}
		p.Steps = append(p.Steps, step)
		mult *= ki

		// Divide shapes along the chosen cuts for the next step.
		for tid, dim := range res.TensorCut {
			cur := shapes[tid]
			next, err := cur.Split(dim, ki)
			if err != nil {
				return nil, fmt.Errorf("recursive: splitting tensor %d: %w", tid, err)
			}
			shapes[tid] = next
		}
	}
	return p, nil
}

// Factorize decomposes k into its prime factors in non-increasing order
// (8 → [2 2 2], 12 → [3 2 2]) — the paper's k = k1*k2*...*km with
// ki >= k(i+1). k = 1 factors into the empty list: the recursion runs zero
// steps and Partition returns the trivial single-worker plan.
func Factorize(k int64) []int64 {
	var out []int64
	for f := int64(2); f*f <= k; f++ {
		for k%f == 0 {
			out = append(out, f)
			k /= f
		}
	}
	if k > 1 {
		out = append(out, k)
	}
	// Largest first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}
