package recursive

import (
	"bytes"
	"testing"

	"tofu/internal/dp"
	"tofu/internal/models"
)

// planJSON runs the search at a given parallelism and serializes the plan.
func planJSON(t *testing.T, m *models.Model, k int64, par int, cache *dp.PriceCache) []byte {
	return planJSONBeam(t, m, k, par, cache, 0)
}

// planJSONBeam is planJSON with a beam bound on the DP frontier.
func planJSONBeam(t *testing.T, m *models.Model, k int64, par int, cache *dp.PriceCache, maxStates int) []byte {
	t.Helper()
	p, err := Partition(m.G, k, Options{Parallelism: par, Cache: cache, MaxStates: maxStates})
	if err != nil {
		t.Fatalf("parallelism %d: %v", par, err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelSearchDeterminism asserts the tentpole guarantee: the
// parallel frontier sweep emits a byte-identical plan JSON to the serial
// search for every worker-pool size, on each benchmark model family.
func TestParallelSearchDeterminism(t *testing.T) {
	builds := []struct {
		name  string
		build func() (*models.Model, error)
	}{
		{"mlp", func() (*models.Model, error) { return models.MLP(4, 512, 64) }},
		{"rnn", func() (*models.Model, error) { return models.RNN(2, 1024, 64, 4) }},
		{"wresnet", func() (*models.Model, error) { return models.WResNet(50, 2, 8) }},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			m, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			serial := planJSON(t, m, 8, 1, nil)
			if len(serial) == 0 {
				t.Fatal("empty plan JSON")
			}
			// Shared cache across runs must not change the result either.
			cache := dp.NewPriceCache()
			for _, par := range []int{1, 2, 8} {
				got := planJSON(t, m, 8, par, nil)
				if !bytes.Equal(serial, got) {
					t.Errorf("parallelism %d diverged from serial plan:\nserial: %s\npar:    %s",
						par, serial, got)
				}
				got = planJSON(t, m, 8, par, cache)
				if !bytes.Equal(serial, got) {
					t.Errorf("parallelism %d with shared cache diverged from serial plan", par)
				}
			}
			if cache.Len() == 0 {
				t.Error("shared cache was never populated")
			}
		})
	}
}

// TestBeamSearchDeterminism covers the wide-frontier path: the attention
// fan-out overflows the dense state arrays into the sparse byte-keyed
// frontier, and the beam bound exercises the quickselect pruning — the
// emitted plan must still be byte-identical across worker-pool sizes.
func TestBeamSearchDeterminism(t *testing.T) {
	m, err := models.Transformer(2, 256, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	serial := planJSONBeam(t, m, 8, 1, nil, 64)
	if len(serial) == 0 {
		t.Fatal("empty plan JSON")
	}
	for _, par := range []int{2, 8} {
		if got := planJSONBeam(t, m, 8, par, nil, 64); !bytes.Equal(serial, got) {
			t.Errorf("parallelism %d diverged from serial beam plan", par)
		}
	}
}

// TestDefaultParallelismMatchesSerial locks the default (GOMAXPROCS) path
// to the serial plan as well.
func TestDefaultParallelismMatchesSerial(t *testing.T) {
	m, err := models.MLP(3, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	serial := planJSON(t, m, 8, 1, nil)
	def := planJSON(t, m, 8, 0, nil)
	if !bytes.Equal(serial, def) {
		t.Fatal("default parallelism diverged from serial plan")
	}
}
