package recursive

import (
	"bytes"
	"testing"

	"tofu/internal/dp"
	"tofu/internal/models"
)

// planJSON runs the search at a given parallelism and serializes the plan.
func planJSON(t *testing.T, m *models.Model, k int64, par int, cache *dp.PriceCache) []byte {
	t.Helper()
	p, err := Partition(m.G, k, Options{Parallelism: par, Cache: cache})
	if err != nil {
		t.Fatalf("parallelism %d: %v", par, err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelSearchDeterminism asserts the tentpole guarantee: the
// parallel frontier sweep emits a byte-identical plan JSON to the serial
// search for every worker-pool size, on each benchmark model family.
func TestParallelSearchDeterminism(t *testing.T) {
	builds := []struct {
		name  string
		build func() (*models.Model, error)
	}{
		{"mlp", func() (*models.Model, error) { return models.MLP(4, 512, 64) }},
		{"rnn", func() (*models.Model, error) { return models.RNN(2, 1024, 64, 4) }},
		{"wresnet", func() (*models.Model, error) { return models.WResNet(50, 2, 8) }},
	}
	for _, b := range builds {
		t.Run(b.name, func(t *testing.T) {
			m, err := b.build()
			if err != nil {
				t.Fatal(err)
			}
			serial := planJSON(t, m, 8, 1, nil)
			if len(serial) == 0 {
				t.Fatal("empty plan JSON")
			}
			// Shared cache across runs must not change the result either.
			cache := dp.NewPriceCache()
			for _, par := range []int{1, 2, 8} {
				got := planJSON(t, m, 8, par, nil)
				if !bytes.Equal(serial, got) {
					t.Errorf("parallelism %d diverged from serial plan:\nserial: %s\npar:    %s",
						par, serial, got)
				}
				got = planJSON(t, m, 8, par, cache)
				if !bytes.Equal(serial, got) {
					t.Errorf("parallelism %d with shared cache diverged from serial plan", par)
				}
			}
			if cache.Len() == 0 {
				t.Error("shared cache was never populated")
			}
		})
	}
}

// TestDefaultParallelismMatchesSerial locks the default (GOMAXPROCS) path
// to the serial plan as well.
func TestDefaultParallelismMatchesSerial(t *testing.T) {
	m, err := models.MLP(3, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	serial := planJSON(t, m, 8, 1, nil)
	def := planJSON(t, m, 8, 0, nil)
	if !bytes.Equal(serial, def) {
		t.Fatal("default parallelism diverged from serial plan")
	}
}
