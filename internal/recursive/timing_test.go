package recursive

import (
	"fmt"
	"testing"
	"time"

	"tofu/internal/models"
)

// TestTimingSearch exercises the Table 1 workloads end to end; the bench
// harness in the repository root reports the exact numbers.
func TestTimingSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale search timing")
	}
	for _, c := range []models.Config{
		{Family: "wresnet", Depth: 152, Width: 10, Batch: 8},
		{Family: "rnn", Depth: 10, Width: 8192, Batch: 128},
	} {
		m, err := models.Build(c)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		p, err := Partition(m.G, 8, Options{})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		states, configs := 0, 0
		for _, s := range p.Steps {
			states += s.States
			configs += s.Configs
		}
		fmt.Printf("%s: nodes=%d search=%v states=%d configs=%d comm=%.1fGB monotone=%v\n",
			m.Name, len(m.G.Nodes), time.Since(start), states, configs, p.TotalComm()/(1<<30), p.Monotone())
		if !p.Monotone() {
			t.Errorf("%s: plan violates Theorem 2", m.Name)
		}
	}
}
