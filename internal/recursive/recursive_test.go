package recursive

import (
	"testing"

	"tofu/internal/models"
	"tofu/internal/partition"
	"tofu/internal/shape"
)

func TestFactorize(t *testing.T) {
	cases := []struct {
		k    int64
		want []int64
	}{
		{8, []int64{2, 2, 2}},
		{2, []int64{2}},
		{6, []int64{3, 2}},
		{12, []int64{3, 2, 2}},
		{7, []int64{7}},
	}
	for _, c := range cases {
		got := Factorize(c.k)
		if len(got) != len(c.want) {
			t.Errorf("Factorize(%d) = %v", c.k, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Factorize(%d) = %v, want %v", c.k, got, c.want)
			}
		}
		// Non-increasing per the paper.
		for i := 0; i+1 < len(got); i++ {
			if got[i] < got[i+1] {
				t.Errorf("Factorize(%d) = %v not non-increasing", c.k, got)
			}
		}
	}
}

func TestPartitionMLP8(t *testing.T) {
	m, err := models.MLP(3, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(m.G, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(p.Steps))
	}
	// Multipliers 1, 2, 4.
	for i, want := range []int64{1, 2, 4} {
		if p.Steps[i].Multiplier != want {
			t.Errorf("step %d multiplier = %d, want %d", i, p.Steps[i].Multiplier, want)
		}
	}
	// Theorem 2: per-step total cost non-decreasing.
	if !p.Monotone() {
		for i, s := range p.Steps {
			t.Logf("step %d: delta=%g", i, s.Delta())
		}
		t.Fatal("plan violates Theorem 2 monotonicity")
	}
	// Every weight ends up sharded to 1/8 of its elements.
	for _, w := range m.G.Weights() {
		fs := p.FinalShapes[w.ID]
		if fs.Elems()*8 != w.Shape.Elems() {
			t.Errorf("weight %v final shard %v is not 1/8", w, fs)
		}
	}
}

func TestPartitionMatmulChoosesAlignedPlan(t *testing.T) {
	// A single wide matmul partitioned 2 ways: the best basic plan costs at
	// most min(S_A, S_B, S_C) — achievable by cutting the largest tensor's
	// "free" dimension or via output reduction.
	m, err := models.MLP(1, 1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(m.G, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalComm() < 0 {
		t.Fatal("negative communication")
	}
	if len(p.Steps) != 1 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
}

func TestPartitionRNN(t *testing.T) {
	m, err := models.RNN(2, 256, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(m.G, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 2 {
		t.Fatalf("steps = %d, want 2", len(p.Steps))
	}
	if !p.Monotone() {
		t.Error("RNN plan violates Theorem 2")
	}
	// Weight shards are 1/4.
	for _, w := range m.G.Weights() {
		fs := p.FinalShapes[w.ID]
		if fs.Elems()*4 != w.Shape.Elems() {
			t.Errorf("weight %v final shard %v is not 1/4", w, fs)
		}
	}
}

func TestOutputReductionFilterRaisesCost(t *testing.T) {
	// Dropping output-reduction strategies (ICML18) can only hurt: cost must
	// be >= the unrestricted plan's. Use an RNN whose backward weight
	// gradients (matmul_tn over the batch axis) favor output reduction.
	m, err := models.RNN(1, 256, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Partition(m.G, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	restricted, err := Partition(m.G, 2, Options{
		StrategyFilter: func(s partition.Strategy) bool { return s.Kind != partition.SplitReduce },
	})
	if err != nil {
		t.Fatal(err)
	}
	if restricted.TotalComm() < full.TotalComm()-1 {
		t.Fatalf("restricted search beat full search: %g < %g",
			restricted.TotalComm(), full.TotalComm())
	}
}

func TestEqualChopSingleStep(t *testing.T) {
	m, err := models.MLP(2, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(m.G, 8, Options{Factors: []int64{8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 1 || p.Steps[0].K != 8 {
		t.Fatalf("EqualChop steps = %v", p.Steps)
	}
	// Single-dimension chopping is never better than recursion.
	rec, err := Partition(m.G, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalComm() < rec.TotalComm()-1 {
		t.Fatalf("single-step chop %g beat recursion %g", p.TotalComm(), rec.TotalComm())
	}
}

func TestPartitionErrors(t *testing.T) {
	m, err := models.MLP(1, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(m.G, 0, Options{}); err == nil {
		t.Error("expected invalid-k error")
	}
	if _, err := Partition(m.G, 8, Options{Factors: []int64{2, 2}}); err == nil {
		t.Error("expected factor-product error")
	}
	if _, err := Partition(m.G, 4, Options{Factors: []int64{4, 1}}); err == nil {
		t.Error("expected invalid-factor error")
	}
}

func TestCutSummaryAndShardDims(t *testing.T) {
	m, err := models.MLP(1, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(m.G, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := m.G.Weights()[0]
	cuts := p.TensorCuts(w.ID)
	if len(cuts) != 2 {
		t.Fatalf("weight cut steps = %d", len(cuts))
	}
	dims := p.ShardDims(w.ID, w.Shape.Rank())
	prod := int64(1)
	for _, d := range dims {
		prod *= d
	}
	if prod != 4 {
		t.Fatalf("shard dims %v do not multiply to 4", dims)
	}
	if s := p.CutSummary(w.ID); s == "" || s == "unpartitioned" {
		t.Fatalf("CutSummary = %q", s)
	}
}

func TestShapesHalveEachStep(t *testing.T) {
	m, err := models.MLP(2, 256, 32)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(m.G, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, ten := range m.G.Tensors {
		fs, ok := p.FinalShapes[ten.ID]
		if !ok {
			continue
		}
		if len(p.TensorCuts(ten.ID)) == 0 {
			continue
		}
		if fs.Elems()*8 != ten.Shape.Elems() {
			t.Errorf("tensor %v shard %v not 1/8 of %v", ten, fs, ten.Shape)
		}
	}
	_ = shape.Of()
}
