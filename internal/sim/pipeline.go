package sim

import (
	"fmt"
	"sort"

	"tofu/internal/graph"
	"tofu/internal/graphgen"
)

// PipelineOptions configure the operator-placement baseline (Sec 7.1):
// whole layers are assigned to GPUs round-robin and timesteps pipeline
// across them, the Sutskever-style placement the paper compares against.
type PipelineOptions struct {
	// TFMode models TensorFlow's runtime for Table 3: no in-place gradient
	// aggregation (extra gradient buffers) plus a calibrated framework
	// overhead on kernel execution (the paper measures TF-OpPlacement at
	// roughly half of MXNet-OpPlacement and attributes it to gradient
	// aggregation; we model the memory effect structurally and fold the
	// rest into this multiplier).
	TFMode bool
	// FrameworkOverhead multiplies kernel times in TFMode (default 2.05,
	// calibrated against Table 3).
	FrameworkOverhead float64
}

// RunPipeline simulates layer-per-GPU pipelined execution of an unrolled
// RNN training graph. Cells are identified by their UnrollTag/Timestep;
// cell (t,l) depends on (t-1,l) and (t,l-1) forward, and the reverse plus
// its forward state backward. Activations between layers on different GPUs
// cross whatever interconnect level separates those GPUs — the PCIe link on
// the flat machine, the slower tier when round-robin placement straddles an
// island or node boundary.
func RunPipeline(g *graph.Graph, topo Topology, batch int64, opts PipelineOptions) (Result, error) {
	hw := topo.HW
	var res Result
	sh, err := graphgen.Single(g)
	if err != nil {
		return res, err
	}

	// Bucket operator shards into per-(layer, timestep, phase) cells.
	layerOf := map[string]int{}
	var tags []string
	for _, os := range sh.Ops {
		if os.Node.UnrollTag == "" {
			continue
		}
		if _, ok := layerOf[os.Node.UnrollTag]; !ok {
			layerOf[os.Node.UnrollTag] = 0
			tags = append(tags, os.Node.UnrollTag)
		}
	}
	if len(tags) == 0 {
		return res, fmt.Errorf("sim: pipeline needs an unrolled model (no UnrollTags found)")
	}
	// Natural order: "lstm/l10" must follow "lstm/l9".
	sort.Slice(tags, func(i, j int) bool {
		if len(tags[i]) != len(tags[j]) {
			return len(tags[i]) < len(tags[j])
		}
		return tags[i] < tags[j]
	})
	for i, tag := range tags {
		layerOf[tag] = i
	}
	layers := len(tags)

	steps := 0
	type cellKey struct {
		l, t int
		bwd  bool
	}
	cellTime := map[cellKey]float64{}
	var headTime, tailTime float64 // untagged forward ops / weight updates
	overhead := 1.0
	if opts.TFMode {
		overhead = opts.FrameworkOverhead
		if overhead <= 0 {
			overhead = 2.05
		}
	}
	for _, os := range sh.Ops {
		n := os.Node
		kt := KernelTime(hw, os) * overhead
		if n.UnrollTag == "" {
			if n.Output.Kind == graph.Gradient || n.Op == "adam_update" || n.Op == "sgd_update" {
				tailTime += kt
			} else {
				headTime += kt
			}
			continue
		}
		if n.Timestep+1 > steps {
			steps = n.Timestep + 1
		}
		k := cellKey{l: layerOf[n.UnrollTag], t: n.Timestep, bwd: n.FwdOf != nil}
		cellTime[k] += kt
	}

	gpuOf := func(l int) int { return l % hw.NumGPUs }
	// Hidden-state bytes crossing between layers.
	hBytes := float64(batch) * 0 // resolved below from a representative tensor
	for _, t := range g.Tensors {
		if t.Kind == graph.Input && t.Shape.Rank() == 2 {
			hBytes = float64(t.Shape.Bytes(t.DType))
			break
		}
	}
	// Hand-off cost between two layers' GPUs, priced at the narrowest
	// interconnect level between them (on the flat machine: always the peer
	// link, exactly the old global xfer).
	xferBetween := func(la, lb int) float64 {
		return hBytes/topo.LinkBandwidth(gpuOf(la), gpuOf(lb)) + hw.PipelineSyncOverhead
	}

	gpuFree := make([]float64, hw.NumGPUs)
	finish := map[cellKey]float64{}
	run := func(k cellKey, extraBusy float64, deps ...float64) {
		start := gpuFree[gpuOf(k.l)]
		for _, d := range deps {
			if d > start {
				start = d
			}
		}
		end := start + cellTime[k] + extraBusy
		gpuFree[gpuOf(k.l)] = end
		finish[k] = end
		res.ComputeSeconds += cellTime[k]
	}
	dep := func(k cellKey, consumerLayer int, sameGPU bool) float64 {
		f, ok := finish[k]
		if !ok {
			return 0
		}
		if !sameGPU {
			xfer := xferBetween(k.l, consumerLayer)
			f += xfer
			res.CommSeconds += xfer
		}
		return f
	}
	// A cross-GPU hand-off also occupies the receiving GPU (driver sync +
	// copy launch), which is what keeps pipelined placement from perfectly
	// saturating the machine (Sec 7.2).
	recvCost := func(l int) float64 {
		if l <= 0 || gpuOf(l-1) == gpuOf(l) {
			return 0
		}
		return xferBetween(l-1, l)
	}

	// Forward wavefront in anti-diagonal order (t+l ascending): by the time
	// a cell is issued, both dependencies already ran, so a GPU holding
	// several layers interleaves ready cells instead of head-of-line
	// blocking — what a dataflow scheduler does.
	for s := 0; s <= steps+layers-2; s++ {
		for l := 0; l < layers; l++ {
			t := s - l
			if t < 0 || t >= steps {
				continue
			}
			run(cellKey{l: l, t: t}, recvCost(l),
				dep(cellKey{l: l, t: t - 1}, l, true),
				dep(cellKey{l: l - 1, t: t}, l, l > 0 && gpuOf(l-1) == gpuOf(l)))
		}
	}
	// Head (loss) on the last layer's GPU.
	lastGPU := gpuOf(layers - 1)
	gpuFree[lastGPU] += headTime
	res.ComputeSeconds += headTime
	headDone := gpuFree[lastGPU]

	// Backward wavefront, anti-diagonal from the top-right corner.
	for s := 0; s <= steps+layers-2; s++ {
		for l := layers - 1; l >= 0; l-- {
			t := steps - 1 - (s - (layers - 1 - l))
			if t < 0 || t >= steps {
				continue
			}
			deps := []float64{
				dep(cellKey{l: l, t: t + 1, bwd: true}, l, true),
				dep(cellKey{l: l + 1, t: t, bwd: true}, l, l+1 < layers && gpuOf(l+1) == gpuOf(l)),
			}
			if t == steps-1 && l == layers-1 {
				deps = append(deps, headDone)
			}
			extra := 0.0
			if l+1 < layers && gpuOf(l+1) != gpuOf(l) {
				extra = xferBetween(l+1, l)
			}
			run(cellKey{l: l, t: t, bwd: true}, extra, deps...)
		}
	}
	// Weight updates on each GPU.
	for i := range gpuFree {
		gpuFree[i] += tailTime / float64(hw.NumGPUs)
	}
	res.ComputeSeconds += tailTime

	for _, f := range gpuFree {
		if f > res.IterSeconds {
			res.IterSeconds = f
		}
	}

	// Memory: each GPU holds its layers' weights (x3 for gradient +
	// optimizer history; TF adds two extra aggregation buffers per weight)
	// plus every forward activation of its assigned cells (live until the
	// backward pass returns) plus its share of fed inputs.
	perGPU := make([]int64, hw.NumGPUs)
	gradFactor := int64(3)
	if opts.TFMode {
		gradFactor = 5
	}
	for _, t := range g.Tensors {
		l, ok := tensorLayer(t, layerOf)
		gpu := lastGPU
		if ok {
			gpu = gpuOf(l)
		}
		switch t.Kind {
		case graph.Weight:
			perGPU[gpu] += t.Bytes() * gradFactor
		case graph.Input:
			perGPU[gpu] += t.Bytes()
		case graph.Activation:
			if t.Producer != nil && t.Producer.UnrollTag != "" && t.Producer.FwdOf == nil {
				perGPU[gpu] += t.Bytes()
			}
		}
	}
	for _, b := range perGPU {
		if b > res.Mem.PeakBytes {
			res.Mem.PeakBytes = b
		}
	}
	res.Mem.PersistentBytes = res.Mem.PeakBytes
	res.OOM = !res.Mem.Fits(hw.GPUMemBytes)

	if res.IterSeconds > 0 {
		res.Throughput = float64(batch) / res.IterSeconds
	}
	return res, nil
}

// tensorLayer attributes a tensor to an unrolled layer via its producer or
// first tagged consumer.
func tensorLayer(t *graph.Tensor, layerOf map[string]int) (int, bool) {
	if t.Producer != nil && t.Producer.UnrollTag != "" {
		return layerOf[t.Producer.UnrollTag], true
	}
	for _, c := range t.Consumers {
		if c.UnrollTag != "" {
			return layerOf[c.UnrollTag], true
		}
	}
	return 0, false
}
