package sim

import (
	"fmt"
	"strconv"

	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/obs"
)

// PipelineStage is one stage of a partitioned pipeline: a sharded
// sub-execution on its own sub-machine, plus the hand-off it sends to the
// next stage each iteration (zero on the last stage).
type PipelineStage struct {
	Sharded *graphgen.Sharded
	Topo    Topology
	// HandoffBytes is the full-batch activation/gradient traffic into the
	// next stage; HandoffBandwidth is the per-GPU bandwidth of the link it
	// crosses. Both are 0 on the last stage.
	HandoffBytes     float64
	HandoffBandwidth float64
}

// RunPipelineStages simulates micro-batched pipeline execution of
// partitioned stages — the hybrid plan's runtime model, unlike RunPipeline's
// layer-per-GPU placement. The batch splits into microBatches equal
// micro-batches; each stage is an internally-partitioned sub-machine whose
// full-batch iteration is simulated by Run, scaled to a micro-batch by
// 1/microBatches (the kernels and transfers all scale with the batch
// dimension). Steady state is bottleneck-paced: the pipeline period is the
// slowest stage's micro-batch time plus its hand-off, and one iteration
// drains microBatches + stages - 1 periods (the GPipe fill/drain makespan).
// Memory is conservative: each stage's full-batch footprint, as if no
// activation were released between micro-batches.
func RunPipelineStages(stages []PipelineStage, batch int64, microBatches int, memOpts memplan.Options, ro RunOptions) (Result, error) {
	var res Result
	S := len(stages)
	if S == 0 {
		return res, fmt.Errorf("sim: pipeline has no stages")
	}
	if microBatches < 1 {
		return res, fmt.Errorf("sim: micro-batch count %d invalid", microBatches)
	}
	if int64(microBatches) > batch {
		return res, fmt.Errorf("sim: %d micro-batches exceed the batch of %d samples", microBatches, batch)
	}
	if batch%int64(microBatches) != 0 {
		return res, fmt.Errorf("sim: batch %d does not divide into %d equal micro-batches", batch, microBatches)
	}
	m := float64(microBatches)
	period := 0.0
	var bottleneckRes Result
	var bottleneckHandoff float64
	micros := make([]float64, S)
	handoffs := make([]float64, S)
	for si, st := range stages {
		if st.Sharded == nil {
			return res, fmt.Errorf("sim: stage %d has no sharded execution", si)
		}
		// Each stage's full-batch profile lands on its own prefixed lanes
		// ("stage<si>/w0/..."), alongside the micro-batch schedule below.
		ro2 := ro
		ro2.Timeline = ro.Timeline.WithPrefix("stage" + strconv.Itoa(si) + "/")
		r := Run(st.Sharded, st.Topo, batch, memOpts, ro2)
		handoff := 0.0
		if si < S-1 && !ro.DisableComm {
			if st.HandoffBytes > 0 && st.HandoffBandwidth <= 0 {
				return res, fmt.Errorf("sim: stage %d hands off %g bytes over invalid bandwidth %g",
					si, st.HandoffBytes, st.HandoffBandwidth)
			}
			if st.HandoffBytes > 0 {
				handoff = (st.HandoffBytes / m) / st.HandoffBandwidth
			}
			handoff += st.Topo.HW.PipelineSyncOverhead
		}
		p := r.IterSeconds/m + handoff
		micros[si] = r.IterSeconds / m
		handoffs[si] = handoff
		if p > period {
			period = p
			bottleneckRes = r
			bottleneckHandoff = handoff
		}
		if r.OOM {
			res.OOM = true
		}
		if r.Mem.PeakBytes > res.Mem.PeakBytes {
			res.Mem = r.Mem
		}
	}
	res.IterSeconds = (m + float64(S-1)) * period
	if ro.Timeline.Enabled() {
		emitPipelineSchedule(ro.Timeline, micros, handoffs, microBatches, period)
	}
	res.ComputeSeconds = bottleneckRes.ComputeSeconds
	res.CommSeconds = bottleneckRes.CommSeconds + m*bottleneckHandoff
	if res.IterSeconds > 0 {
		res.Throughput = float64(batch) / res.IterSeconds
	}
	return res, nil
}

// emitPipelineSchedule records the GPipe-style bottleneck-paced schedule:
// stage s processes micro-batch b in period slot s+b ("pipeline/stage<s>"
// lanes), hands it downstream for the tail of the slot, and the whole
// iteration splits into fill / steady / drain phases on the "pipeline"
// marker lane. Stages idle inside a slot when they are faster than the
// bottleneck — visible as lane gaps.
func emitPipelineSchedule(tl *obs.Timeline, micros, handoffs []float64, microBatches int, period float64) {
	S := len(micros)
	m := float64(microBatches)
	fill := float64(S-1) * period
	if fill > 0 {
		tl.Add(obs.Event{Lane: "pipeline", Name: "fill", Kind: "fill",
			Start: 0, Dur: fill, Level: -1})
	}
	if steady := m*period - fill; steady > 0 {
		tl.Add(obs.Event{Lane: "pipeline", Name: "steady", Kind: "steady",
			Start: fill, Dur: steady, Level: -1})
	}
	if fill > 0 {
		tl.Add(obs.Event{Lane: "pipeline", Name: "drain", Kind: "drain",
			Start: m * period, Dur: fill, Level: -1})
	}
	for s := 0; s < S; s++ {
		lane := "pipeline/stage" + strconv.Itoa(s)
		for b := 0; b < microBatches; b++ {
			slot := float64(s+b) * period
			tl.Add(obs.Event{Lane: lane, Name: "micro" + strconv.Itoa(b),
				Kind: "compute", Start: slot, Dur: micros[s], Level: -1})
			if handoffs[s] > 0 {
				tl.Add(obs.Event{Lane: lane, Name: "handoff" + strconv.Itoa(b),
					Kind: "handoff", Start: slot + micros[s], Dur: handoffs[s], Level: -1})
			}
		}
	}
}
