package sim

import (
	"testing"

	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/models"
	"tofu/internal/recursive"
)

func singleSharded(t *testing.T, m *models.Model) *graphgen.Sharded {
	t.Helper()
	sh, err := graphgen.Single(m.G)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestRunBasics(t *testing.T) {
	m, err := models.MLP(2, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHW()
	res := Run(singleSharded(t, m), FlatTopology(hw), 64, memplan.DefaultOptions(), RunOptions{})
	if res.IterSeconds <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.CommSeconds != 0 {
		t.Fatal("single GPU must not communicate")
	}
	if res.ComputeSeconds > res.IterSeconds+1e-12 {
		t.Fatal("compute exceeds iteration time")
	}
}

func TestReplicasScaleThroughput(t *testing.T) {
	m, err := models.MLP(1, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHW()
	one := Run(singleSharded(t, m), FlatTopology(hw), 32, memplan.DefaultOptions(), RunOptions{Replicas: 1})
	eight := Run(singleSharded(t, m), FlatTopology(hw), 32, memplan.DefaultOptions(), RunOptions{Replicas: 8})
	if eight.Throughput < one.Throughput*7.9 || eight.Throughput > one.Throughput*8.1 {
		t.Fatalf("replicas scaling wrong: %g vs %g", eight.Throughput, one.Throughput)
	}
}

func TestCommOverlapsButGates(t *testing.T) {
	m, err := models.RNN(2, 512, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := recursive.Partition(m.G, 8, recursive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := graphgen.Generate(m.G, p, graphgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHW()
	with := Run(sh, FlatTopology(hw), 64, memplan.DefaultOptions(), RunOptions{})
	without := Run(sh, FlatTopology(hw), 64, memplan.DefaultOptions(), RunOptions{DisableComm: true})
	if with.IterSeconds < without.IterSeconds {
		t.Fatal("communication cannot speed execution up")
	}
	if without.CommSeconds != 0 {
		t.Fatal("DisableComm must zero communication")
	}
	// Figure 10's breakdown: compute-only time equals the kernel total.
	if diff := without.IterSeconds - without.ComputeSeconds; diff < 0 || diff > without.IterSeconds*0.01 {
		t.Fatalf("compute-only run should be kernel-bound, diff %g", diff)
	}
}

func TestKernelEfficiencyCurves(t *testing.T) {
	hw := DefaultHW()
	// Matmul efficiency grows with rows and saturates.
	if Eff(hw, ClassMatmul, 64) >= Eff(hw, ClassMatmul, 512) {
		t.Fatal("matmul efficiency must grow with rows")
	}
	if Eff(hw, ClassMatmul, 1<<20) > hw.MatmulMaxEff {
		t.Fatal("matmul efficiency exceeds max")
	}
	// Conv stays efficient even at small batch (Sec 7.2): batch 8 within
	// 25% of batch 128.
	if Eff(hw, ClassConv, 8) < Eff(hw, ClassConv, 128)*0.75 {
		t.Fatal("conv efficiency collapsed at small batch")
	}
	// Element-wise kernels are memory-bound.
	if Eff(hw, ClassMemBound, 1) != 1 {
		t.Fatal("mem-bound class should not scale FLOPs")
	}
}

func TestClassify(t *testing.T) {
	cases := map[string]KernelClass{
		"matmul": ClassMatmul, "matmul_nt": ClassMatmul, "batch_cholesky": ClassMatmul,
		"conv2d": ClassConv, "conv2d_bwd_weight": ClassConv,
		"relu": ClassMemBound, "bn_mean": ClassMemBound,
	}
	for op, want := range cases {
		if got := Classify(op); got != want {
			t.Errorf("classify(%s) = %v, want %v", op, got, want)
		}
	}
}

func TestSwapFitsWithoutTraffic(t *testing.T) {
	// A model far below capacity must run swap-free at compute speed.
	m, err := models.MLP(2, 128, 32)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHW()
	res := RunSwap(singleSharded(t, m), FlatTopology(hw), 32)
	if res.CommSeconds != 0 {
		t.Fatalf("tiny model should not swap, traffic time %g", res.CommSeconds)
	}
	if res.OOM {
		t.Fatal("unexpected OOM")
	}
}

func TestSwapOverflowsGracefully(t *testing.T) {
	// RNN-4-2K at batch 512 exceeds 12 GB; swapping must produce traffic
	// but stay far below the pathological everything-thrashes regime.
	m, err := models.RNN(4, 2048, 512, 20)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHW()
	sh := singleSharded(t, m)
	rep := memplan.Plan(sh, memplan.DefaultOptions())
	if rep.Fits(hw.GPUMemBytes) {
		t.Skipf("model unexpectedly fits (%d bytes)", rep.PeakBytes)
	}
	res := RunSwap(sh, FlatTopology(hw), 512)
	if res.OOM {
		t.Fatal("swap should enable execution")
	}
	if res.CommSeconds <= 0 {
		t.Fatal("overflowing model must swap")
	}
	if res.IterSeconds < res.ComputeSeconds {
		t.Fatal("iteration cannot beat compute")
	}
}

func TestPipelineRNN(t *testing.T) {
	m, err := models.RNN(4, 512, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHW()
	res, err := RunPipeline(m.G, FlatTopology(hw), 64, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("pipeline produced no throughput")
	}
	// Pipelining cannot beat perfect parallelism over the busiest GPU:
	// with 4 layers on 8 GPUs, at most half the machine is busy.
	ideal := Run(singleSharded(t, m), FlatTopology(hw), 64, memplan.DefaultOptions(), RunOptions{Replicas: 8})
	if res.Throughput >= ideal.Throughput {
		t.Fatalf("pipeline %g must not reach ideal %g", res.Throughput, ideal.Throughput)
	}
}

func TestPipelineTFModeSlower(t *testing.T) {
	m, err := models.RNN(4, 512, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHW()
	mx, err := RunPipeline(m.G, FlatTopology(hw), 64, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tf, err := RunPipeline(m.G, FlatTopology(hw), 64, PipelineOptions{TFMode: true})
	if err != nil {
		t.Fatal(err)
	}
	if tf.Throughput >= mx.Throughput {
		t.Fatalf("TF mode (%g) must be slower than MXNet mode (%g)", tf.Throughput, mx.Throughput)
	}
	if tf.Mem.PeakBytes <= mx.Mem.PeakBytes {
		t.Fatal("TF mode must use more gradient memory")
	}
}

func TestPipelineNeedsUnrolledModel(t *testing.T) {
	m, err := models.MLP(2, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPipeline(m.G, DefaultTopology(), 8, PipelineOptions{}); err == nil {
		t.Fatal("expected error for non-unrolled model")
	}
}

func TestPipelineMemoryImbalance(t *testing.T) {
	// 10 layers on 8 GPUs: two GPUs hold two layers each; peak memory must
	// reflect the heavier GPUs (the Fig 9 Op-Placement OOM mechanism).
	m10, err := models.RNN(10, 256, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	m8, err := models.RNN(8, 256, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	hw := DefaultHW()
	r10, err := RunPipeline(m10.G, FlatTopology(hw), 16, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := RunPipeline(m8.G, FlatTopology(hw), 16, PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r10.Mem.PeakBytes < r8.Mem.PeakBytes*3/2 {
		t.Fatalf("doubled-up GPUs should show ~2x memory: %d vs %d",
			r10.Mem.PeakBytes, r8.Mem.PeakBytes)
	}
}
