package sim

import (
	"bytes"
	"testing"

	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/models"
	"tofu/internal/plan"
	"tofu/internal/recursive"
)

func benchmarkModels(t *testing.T) []*models.Model {
	t.Helper()
	var out []*models.Model
	for _, cfg := range []models.Config{
		{Family: "mlp", Depth: 2, Width: 512, Batch: 64},
		{Family: "rnn", Depth: 2, Width: 1024, Batch: 128},
		{Family: "wresnet", Depth: 50, Width: 2, Batch: 32},
	} {
		m, err := models.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, m)
	}
	return out
}

func planJSON(t *testing.T, p *plan.Plan) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFlatProfileEquivalence locks the refactor's compatibility contract:
// on the default (single-level) profile, the topology-aware path reproduces
// the flat search's plan JSON byte for byte and the simulator's Result
// exactly, on MLP, RNN and WResNet.
func TestFlatProfileEquivalence(t *testing.T) {
	topo := DefaultTopology()
	hw := DefaultHW()
	for _, m := range benchmarkModels(t) {
		flat, err := recursive.Partition(m.G, 8, recursive.Options{})
		if err != nil {
			t.Fatal(err)
		}
		aware, err := recursive.Partition(m.G, 8, recursive.Options{Topology: &topo})
		if err != nil {
			t.Fatal(err)
		}
		if fj, aj := planJSON(t, flat), planJSON(t, aware); !bytes.Equal(fj, aj) {
			t.Fatalf("%s: topology-aware plan diverged from flat plan on the default profile:\n%s\n%s",
				m.Name, fj, aj)
		}
		sh, err := graphgen.Generate(m.G, aware, graphgen.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rFlat := Run(sh, FlatTopology(hw), m.Batch, memplan.DefaultOptions(), RunOptions{})
		rTopo := Run(sh, topo, m.Batch, memplan.DefaultOptions(), RunOptions{})
		if rFlat != rTopo {
			t.Fatalf("%s: simulated results diverged between flat HW and default topology:\n%+v\n%+v",
				m.Name, rFlat, rTopo)
		}
	}
}

// TestNVLinkPlanDiffers is the regression guard for the topology-aware
// search actually reacting to the machine: on the DGX-1 profile the chosen
// plan (including its step-to-level layout) must differ from the flat plan
// on at least one benchmark.
func TestNVLinkPlanDiffers(t *testing.T) {
	dgx := DGX1Topology()
	m, err := models.RNN(2, 1500, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := recursive.Partition(m.G, 8, recursive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aware, err := recursive.Partition(m.G, 8, recursive.Options{Topology: &dgx})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(planJSON(t, flat), planJSON(t, aware)) {
		t.Fatal("NVLink-profile plan is identical to the flat plan; the search ignored the topology")
	}
}

// TestHierarchicalCommPricing checks the per-level transfer pricing: the
// same sharded execution costs more communication time when its slow-level
// steps cross a slower link.
func TestHierarchicalCommPricing(t *testing.T) {
	m, err := models.RNN(2, 1024, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	cl := Cluster2x8Topology()
	p, err := recursive.Partition(m.G, 16, recursive.Options{Topology: &cl})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := graphgen.Generate(m.G, p, graphgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	hier := Run(sh, cl, m.Batch, memplan.DefaultOptions(), RunOptions{})
	// The same execution on a fantasy flat machine whose every link runs at
	// PCIe speed must see strictly less communication time: the real
	// cluster's Ethernet level is slower than any flat link.
	fast := cl.HW
	fast.NumGPUs = 16
	flat := Run(sh, FlatTopology(fast), m.Batch, memplan.DefaultOptions(), RunOptions{})
	if hier.CommSeconds <= flat.CommSeconds {
		t.Fatalf("Ethernet-crossing steps must cost more than flat PCIe: %g vs %g",
			hier.CommSeconds, flat.CommSeconds)
	}
}
