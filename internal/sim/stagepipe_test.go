package sim_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tofu/internal/hybrid"
	"tofu/internal/memplan"
	"tofu/internal/models"
	"tofu/internal/sim"
	"tofu/internal/topo"
)

func resultBytes(t *testing.T, r sim.Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunPipelineDeterministicHierarchical pins the layer-per-GPU pipeline
// baseline on hierarchical machines: repeated runs must produce
// byte-identical results (the simulator is a pure function of its inputs),
// and the result must be finite and positive.
func TestRunPipelineDeterministicHierarchical(t *testing.T) {
	m, err := models.Build(models.Config{Family: "rnn", Depth: 2, Width: 256, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range []string{"dgx1", "cluster-2x8"} {
		tp, err := topo.Profile(prof)
		if err != nil {
			t.Fatal(err)
		}
		first, err := sim.RunPipeline(m.G, tp, 16, sim.PipelineOptions{})
		if err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
		if first.IterSeconds <= 0 || first.Throughput <= 0 {
			t.Fatalf("%s: degenerate result %+v", prof, first)
		}
		want := resultBytes(t, first)
		for run := 0; run < 3; run++ {
			r, err := sim.RunPipeline(m.G, tp, 16, sim.PipelineOptions{})
			if err != nil {
				t.Fatalf("%s run %d: %v", prof, run, err)
			}
			if !bytes.Equal(resultBytes(t, r), want) {
				t.Errorf("%s run %d: result bytes changed", prof, run)
			}
		}
	}
}

// TestRunPipelineStagesDeterministic is the hybrid-runtime counterpart:
// stages from the joint search simulated at search Parallelism 1, 2 and 8
// must all price to byte-identical results, across repeated runs — the
// fixed point the BENCH gates and golden plans rest on.
func TestRunPipelineStagesDeterministic(t *testing.T) {
	cfg := models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64}
	m, err := models.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, prof := range []string{"dgx1", "cluster-2x8"} {
		tp, err := topo.Profile(prof)
		if err != nil {
			t.Fatal(err)
		}
		var want []byte
		for _, par := range []int{1, 2, 8} {
			res, err := hybrid.Partition(m.G, int64(tp.NumGPUs()), hybrid.Options{
				Topology: &tp, Parallelism: par,
			})
			if err != nil {
				t.Fatalf("%s par %d: %v", prof, par, err)
			}
			stages := make([]sim.PipelineStage, len(res.Stages))
			for i, st := range res.Stages {
				stages[i] = sim.PipelineStage{
					Sharded:          st.Sharded,
					Topo:             st.Topo,
					HandoffBytes:     st.HandoffBytes,
					HandoffBandwidth: st.HandoffBandwidth,
				}
			}
			for run := 0; run < 2; run++ {
				r, err := sim.RunPipelineStages(stages, cfg.Batch, len(stages), memplan.DefaultOptions(), sim.RunOptions{})
				if err != nil {
					t.Fatalf("%s par %d run %d: %v", prof, par, run, err)
				}
				got := resultBytes(t, r)
				if want == nil {
					if r.IterSeconds <= 0 || r.Throughput <= 0 {
						t.Fatalf("%s: degenerate result %+v", prof, r)
					}
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s par %d run %d: result bytes differ from par-1 baseline", prof, par, run)
				}
			}
		}
	}
}

// TestRunPipelineStagesErrors covers the infeasible-split and malformed-
// stage error paths.
func TestRunPipelineStagesErrors(t *testing.T) {
	m, err := models.Build(models.Config{Family: "mlp", Depth: 4, Width: 256, Batch: 64})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := topo.Profile("cluster-2x8")
	if err != nil {
		t.Fatal(err)
	}
	res, err := hybrid.Partition(m.G, int64(tp.NumGPUs()), hybrid.Options{Topology: &tp, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	stages := make([]sim.PipelineStage, len(res.Stages))
	for i, st := range res.Stages {
		stages[i] = sim.PipelineStage{
			Sharded:          st.Sharded,
			Topo:             st.Topo,
			HandoffBytes:     st.HandoffBytes,
			HandoffBandwidth: st.HandoffBandwidth,
		}
	}
	opts := memplan.DefaultOptions()
	cases := []struct {
		name   string
		stages []sim.PipelineStage
		batch  int64
		micro  int
		frag   string
	}{
		{"no-stages", nil, 64, 1, "no stages"},
		{"zero-micro", stages, 64, 0, "invalid"},
		{"micro-exceeds-batch", stages, 2, 4, "exceed"},
		{"uneven-split", stages, 64, 7, "divide"},
		{"nil-sharded", []sim.PipelineStage{{Topo: tp}, {Topo: tp}}, 64, 1, "no sharded"},
		{"bad-bandwidth", []sim.PipelineStage{
			{Sharded: stages[0].Sharded, Topo: stages[0].Topo, HandoffBytes: 1024, HandoffBandwidth: 0},
			stages[len(stages)-1],
		}, 64, 1, "bandwidth"},
	}
	for _, c := range cases {
		_, err := sim.RunPipelineStages(c.stages, c.batch, c.micro, opts, sim.RunOptions{})
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.frag)
		}
	}
}
