package sim

import (
	"testing"

	"tofu/internal/tdl"
)

// TestStandardRegistryClassifiesIntentionally enforces the kernel-class
// table's coverage contract: every operator in the standard TDL registry has
// an explicit class entry, so no standard kernel is priced by the prefix
// fallthrough.
func TestStandardRegistryClassifiesIntentionally(t *testing.T) {
	for _, op := range tdl.Std.Names() {
		if !HasKernelClass(op) {
			t.Errorf("op %q has no explicit kernel class (classified by fallthrough as %v)",
				op, Classify(op))
		}
	}
}

func TestAttentionOpsAreMatmulClass(t *testing.T) {
	// The old prefix switch let the attention kernels fall through to
	// memory-bound; they are batched matmuls.
	for _, op := range []string{"bmm", "bmm_nt", "bmm_tn", "linear3d", "linear3d_bwd_data", "linear3d_bwd_weight"} {
		if got := Classify(op); got != ClassMatmul {
			t.Errorf("Classify(%s) = %v, want matmul", op, got)
		}
	}
}

func TestCustomOpFallbackAndRegistration(t *testing.T) {
	// Unregistered custom ops still classify by prefix...
	if got := Classify("matmul_custom_variant"); got != ClassMatmul {
		t.Errorf("prefix fallback broken: %v", got)
	}
	if got := Classify("my_fancy_elementwise"); got != ClassMemBound {
		t.Errorf("default fallback broken: %v", got)
	}
	// ...and an explicit registration overrides the fallback.
	RegisterKernelClass("my_custom_contraction", ClassMatmul)
	if got := Classify("my_custom_contraction"); got != ClassMatmul {
		t.Errorf("registered class ignored: %v", got)
	}
}
