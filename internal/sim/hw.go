// Package sim is the discrete-event multi-GPU simulator that stands in for
// the paper's testbed (an EC2 p2.8xlarge: 8 NVIDIA K80 GPUs with 12 GB each,
// 21 GB/s PCIe peer-to-peer, a 10 GB/s shared CPU link — Sec 7.1). The
// simulator executes the sharded per-worker structure from graphgen on a
// calibrated kernel cost model: compute-bound kernels run at an efficiency
// that grows with per-GPU work size (matmul starves at small batches, conv
// stays efficient — the Sec 7.2 effects), element-wise kernels are
// memory-bandwidth bound, and communication engines overlap with compute.
package sim

import (
	"strings"

	"tofu/internal/graphgen"
)

// HW describes the simulated machine.
type HW struct {
	NumGPUs     int
	GPUMemBytes int64
	// PeakFLOPS is the per-GPU fp32 peak; efficiency curves scale it down.
	PeakFLOPS float64
	// MemBW bounds element-wise/reduction kernels (bytes/s).
	MemBW float64
	// P2PBandwidth is the per-GPU PCIe peer bandwidth (bytes/s).
	P2PBandwidth float64
	// HostBandwidth is the CPU link all GPUs share (bytes/s) — the swap
	// baseline's bottleneck.
	HostBandwidth float64
	// KernelOverhead is the fixed launch latency per kernel (seconds).
	KernelOverhead float64

	// Efficiency curve parameters: eff = Max * rows / (rows + Half).
	MatmulMaxEff   float64
	MatmulHalfRows float64
	ConvMaxEff     float64
	ConvHalfBatch  float64
	// SwapOverlap is the fraction of swap transfer hidden behind compute
	// (the baseline's prefetcher, Sec 7.1).
	SwapOverlap float64
	// PipelineSyncOverhead is the scheduling/synchronization latency added
	// to every cross-GPU activation hand-off in operator placement.
	PipelineSyncOverhead float64
}

// DefaultHW is calibrated to the paper's p2.8xlarge: per-GPU throughput in
// the ballpark of a K80 GK210 (~4.4 TFLOPS peak, ~240 GB/s HBM), 21 GB/s
// peer-to-peer, 10 GB/s host link shared by all eight GPUs.
func DefaultHW() HW {
	return HW{
		NumGPUs:              8,
		GPUMemBytes:          12 << 30,
		PeakFLOPS:            5.1e12,
		MemBW:                240e9,
		P2PBandwidth:         21e9,
		HostBandwidth:        10e9,
		KernelOverhead:       20e-6,
		MatmulMaxEff:         0.80,
		MatmulHalfRows:       200,
		ConvMaxEff:           0.65,
		ConvHalfBatch:        2,
		SwapOverlap:          0.7,
		PipelineSyncOverhead: 10e-3,
	}
}

// kernelClass buckets operators by their performance regime.
type kernelClass int

const (
	classMatmul kernelClass = iota
	classConv
	classMemBound
)

func classify(op string) kernelClass {
	switch {
	case strings.HasPrefix(op, "matmul"):
		return classMatmul
	case strings.HasPrefix(op, "conv"):
		return classConv
	case strings.HasPrefix(op, "batch_"): // batched dense linear algebra
		return classMatmul
	default:
		return classMemBound
	}
}

// Eff returns the fraction of peak FLOPS a kernel achieves given its class
// and leading output extent (rows for matmul, batch for conv).
func (hw HW) Eff(class kernelClass, rows float64) float64 {
	switch class {
	case classMatmul:
		return hw.MatmulMaxEff * rows / (rows + hw.MatmulHalfRows)
	case classConv:
		return hw.ConvMaxEff * rows / (rows + hw.ConvHalfBatch)
	default:
		return 1
	}
}

// KernelTime prices one operator shard on a GPU: the max of its
// compute-bound and memory-bound times plus launch overhead.
func (hw HW) KernelTime(os graphgen.OpShard) float64 {
	class := classify(os.Node.Op)
	rows := os.KernelRows
	if rows <= 0 {
		rows = 1
		if os.OutShard.Rank() > 0 {
			rows = float64(os.OutShard.Dim(0))
		}
	}
	var compute float64
	if class == classMemBound {
		compute = 0 // bandwidth term dominates below
	} else {
		compute = os.FLOPs / (hw.PeakFLOPS * hw.Eff(class, rows))
	}
	mem := os.MemBytes / hw.MemBW
	t := compute
	if mem > t {
		t = mem
	}
	return t + hw.KernelOverhead
}
