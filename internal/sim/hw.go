// Package sim is the discrete-event multi-GPU simulator that stands in for
// the paper's testbed (an EC2 p2.8xlarge: 8 NVIDIA K80 GPUs with 12 GB each,
// 21 GB/s PCIe peer-to-peer, a 10 GB/s shared CPU link — Sec 7.1). The
// simulator executes the sharded per-worker structure from graphgen on a
// calibrated kernel cost model: compute-bound kernels run at an efficiency
// that grows with per-GPU work size (matmul starves at small batches, conv
// stays efficient — the Sec 7.2 effects), element-wise kernels are
// memory-bandwidth bound, and communication engines overlap with compute.
package sim

import (
	"tofu/internal/graphgen"
	"tofu/internal/topo"
)

// HW describes a flat simulated machine: the per-GPU compute parameters plus
// one uniform peer link. It lives in the topo package as the per-GPU half of
// a Topology; sim re-exports it and keeps the kernel cost model on top.
type HW = topo.HW

// DefaultHW is calibrated to the paper's p2.8xlarge: per-GPU throughput in
// the ballpark of a K80 GK210 (~4.4 TFLOPS peak, ~240 GB/s HBM), 21 GB/s
// peer-to-peer, 10 GB/s host link shared by all eight GPUs.
func DefaultHW() HW { return topo.DefaultHW() }

// Eff returns the fraction of peak FLOPS a kernel achieves given its class
// and leading output extent (rows for matmul, batch for conv).
func Eff(hw HW, class KernelClass, rows float64) float64 {
	switch class {
	case ClassMatmul:
		return hw.MatmulMaxEff * rows / (rows + hw.MatmulHalfRows)
	case ClassConv:
		return hw.ConvMaxEff * rows / (rows + hw.ConvHalfBatch)
	default:
		return 1
	}
}

// KernelTime prices one operator shard on a GPU: the max of its
// compute-bound and memory-bound times plus launch overhead.
func KernelTime(hw HW, os graphgen.OpShard) float64 {
	class := Classify(os.Node.Op)
	rows := os.KernelRows
	if rows <= 0 {
		rows = 1
		if os.OutShard.Rank() > 0 {
			rows = float64(os.OutShard.Dim(0))
		}
	}
	var compute float64
	if class == ClassMemBound {
		compute = 0 // bandwidth term dominates below
	} else {
		compute = os.FLOPs / (hw.PeakFLOPS * Eff(hw, class, rows))
	}
	mem := os.MemBytes / hw.MemBW
	t := compute
	if mem > t {
		t = mem
	}
	return t + hw.KernelOverhead
}
