package sim

import (
	"tofu/internal/topo"
)

// The hardware model lives in the topo package (so the search can consume it
// without depending on the simulator); sim re-exports it under the
// historical names.
type (
	// Topology describes a (possibly hierarchical) simulated machine.
	Topology = topo.Topology
	// Level is one interconnect tier of a Topology.
	Level = topo.Level
)

// FlatTopology wraps a flat machine into a single-level topology.
func FlatTopology(hw HW) Topology { return topo.FlatTopology(hw) }

// DefaultTopology is the calibrated p2.8xlarge profile.
func DefaultTopology() Topology { return topo.DefaultTopology() }

// DGX1Topology is the NVLink-island profile.
func DGX1Topology() Topology { return topo.DGX1Topology() }

// DGX2Topology is the three-tier NVSwitch-box profile.
func DGX2Topology() Topology { return topo.DGX2Topology() }

// Cluster2x8Topology is the two-node Ethernet cluster profile.
func Cluster2x8Topology() Topology { return topo.Cluster2x8Topology() }

// Cluster4x2x8Topology is the 64-GPU three-level cluster profile.
func Cluster4x2x8Topology() Topology { return topo.Cluster4x2x8Topology() }

// Cluster4x2x12Topology is the 96-GPU mixed-factor cluster profile.
func Cluster4x2x12Topology() Topology { return topo.Cluster4x2x12Topology() }

// Cluster8x2x8Topology is the 128-GPU three-level cluster profile.
func Cluster8x2x8Topology() Topology { return topo.Cluster8x2x8Topology() }

// Cluster2x4x2x12Topology is the 192-GPU four-level fleet profile.
func Cluster2x4x2x12Topology() Topology { return topo.Cluster2x4x2x12Topology() }

// Profile returns a named topology from the library.
func Profile(name string) (Topology, error) { return topo.Profile(name) }

// ProfileNames lists the built-in machine profiles, sorted.
func ProfileNames() []string { return topo.ProfileNames() }

// ResolveTopology interprets a -hw argument: profile name or JSON path.
func ResolveTopology(arg string) (Topology, error) { return topo.ResolveTopology(arg) }

// LoadTopology reads a user-defined machine from a JSON file.
func LoadTopology(path string) (Topology, error) { return topo.LoadTopology(path) }
