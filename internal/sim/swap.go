package sim

import (
	"container/heap"

	"tofu/internal/graph"
	"tofu/internal/graphgen"
	"tofu/internal/memplan"
)

// RunSwap simulates the swapping baseline of Sec 7.1: a single GPU running
// the whole graph, spilling buffers to host memory when the working set
// exceeds device capacity. Following the paper's baseline (vDNN-style
// least-recently-used eviction with an execution-driven prefetcher), the
// policy is LRU over memory blocks — which, like the real system, degrades
// sharply once the cyclic weight accesses of a large RNN exceed capacity
// (Sec 7.2: "the amount of swapping increases significantly") — with
// SwapOverlap of the transfer hidden behind compute and dataflow-driven
// deallocation of dead buffers:
//
//   - any memory block may spill, not just activations;
//   - read-only tensors (weights, inputs, optimizer state) are copied to
//     host once and dropped on eviction — only reloads cost;
//   - all of one host's replicas share that host's CPU link, so each sees
//     HostBandwidth/GPUsPerHost (the Sec 7.2 bottleneck; on a flat machine
//     that is HostBandwidth/NumGPUs exactly as before).
func RunSwap(sh *graphgen.Sharded, topo Topology, batch int64) Result {
	hw := topo.HW
	var res Result
	res.Mem = memplan.Plan(sh, memplan.DefaultOptions())

	// In-place alias chains (gradient aggregation, optimizer updates) share
	// one memory block; collapse them so the policy sees real buffers.
	root := memplan.AliasRoots(sh.G, true)

	// Precompute every buffer's access sequence (op indices touching it).
	uses := map[int][]int{}
	for i, os := range sh.Ops {
		for _, in := range os.Node.Inputs {
			uses[root[in.ID]] = append(uses[root[in.ID]], i)
		}
		uses[root[os.Node.Output.ID]] = append(uses[root[os.Node.Output.ID]], i)
	}
	const never = 1 << 30
	cursor := map[int]int{} // per tensor: next index into uses
	nextUse := func(id int, now int) int {
		seq := uses[id]
		c := cursor[id]
		for c < len(seq) && seq[c] <= now {
			c++
		}
		cursor[id] = c
		if c == len(seq) {
			return never // never again: free, don't swap
		}
		return seq[c]
	}

	readonly := func(t *graph.Tensor) bool {
		return t.Kind == graph.Weight || t.Kind == graph.Input || t.Kind == graph.OptState
	}
	persistentKind := func(t *graph.Tensor) bool {
		// Weights/state live across iterations; they are never "dead".
		return readonly(t)
	}
	tensorByID := map[int]*graph.Tensor{}
	for _, t := range sh.G.Tensors {
		tensorByID[t.ID] = t
	}

	// Resident set with an LRU priority heap (lazily refreshed on pops).
	h := &lruHeap{}
	lastUse := map[int]int{}
	resident := map[int]bool{}
	spilled := map[int]bool{} // evicted at least once: reloading costs
	var residentBytes int64
	capacity := hw.GPUMemBytes
	var trafficBytes float64
	var inUse map[int]bool

	evictFor := func(need int64, now int) bool {
		var pinned []swapEntry
		defer func() {
			for _, e := range pinned {
				heap.Push(h, e)
			}
		}()
		evicted := map[int]bool{}
		for residentBytes+need > capacity {
			found := false
			for h.Len() > 0 {
				e := heap.Pop(h).(swapEntry)
				if !resident[e.id] || evicted[e.id] {
					continue // stale duplicate
				}
				// Lazily refresh stale recency; a refreshed entry
				// re-enters the heap with its true last-use time.
				if fresh := lastUse[e.id]; fresh != e.last {
					e.last = fresh
					heap.Push(h, e)
					continue
				}
				if inUse[e.id] {
					pinned = append(pinned, e)
					continue
				}
				resident[e.id] = false
				evicted[e.id] = true
				spilled[e.id] = true
				residentBytes -= sh.TensorShard[e.id]
				if !readonly(tensorByID[e.id]) {
					trafficBytes += float64(sh.TensorShard[e.id])
				}
				found = true
				break
			}
			if !found {
				return false // everything live is pinned by the current op
			}
		}
		return true
	}
	touch := func(id int, now int, load bool) bool {
		lastUse[id] = now
		if resident[id] {
			heap.Push(h, swapEntry{id: id, last: now})
			return true
		}
		bytes := sh.TensorShard[id]
		if !evictFor(bytes, now) {
			return false
		}
		// Only reloading previously spilled data costs host traffic; the
		// initial placement of weights and inputs is not per-iteration swap
		// traffic.
		if load && spilled[id] {
			trafficBytes += float64(bytes)
		}
		resident[id] = true
		residentBytes += bytes
		heap.Push(h, swapEntry{id: id, last: now})
		return true
	}

	var compute float64
	for i, os := range sh.Ops {
		n := os.Node
		inUse = map[int]bool{root[n.Output.ID]: true}
		for _, in := range n.Inputs {
			inUse[root[in.ID]] = true
		}
		ok := true
		for _, in := range n.Inputs {
			ok = ok && touch(root[in.ID], i, true)
		}
		// Outputs are produced, not loaded; aliased outputs reuse the
		// already-resident root block.
		ok = ok && touch(root[n.Output.ID], i, false)
		if !ok {
			res.OOM = true // one operator's working set exceeds device memory
			return res
		}
		compute += KernelTime(hw, os)

		// Dead buffers are deallocated by the memory manager, not swapped:
		// no writeback, no future reload.
		for id := range inUse {
			if resident[id] && nextUse(id, i) == never && !persistentKind(tensorByID[id]) {
				resident[id] = false
				residentBytes -= sh.TensorShard[id]
			}
		}
	}

	res.ComputeSeconds = compute

	// Mesh-concurrency pressure (Sec 7.2): frameworks schedule operators as
	// soon as they are ready, so an unrolled RNN keeps many timesteps in
	// flight at once; each concurrently-active timestep re-fetches whatever
	// share of the working set exceeds the device. A serial sweep cannot
	// exhibit this, so it is modeled explicitly: one overflow's worth of
	// traffic per unrolled timestep.
	steps := 0
	for _, os := range sh.Ops {
		if os.Node.UnrollTag != "" && os.Node.Timestep+1 > steps {
			steps = os.Node.Timestep + 1
		}
	}
	if overflow := res.Mem.PeakBytes - capacity; steps > 1 && overflow > 0 {
		trafficBytes += float64(steps) * float64(overflow)
	}

	share := hw.HostBandwidth / float64(topo.GPUsPerHost())
	transfer := trafficBytes / share
	res.CommSeconds = transfer
	// The prefetcher hides SwapOverlap of whichever side is shorter.
	lo, hi := compute, transfer
	if lo > hi {
		lo, hi = hi, lo
	}
	res.IterSeconds = hi + (1-hw.SwapOverlap)*lo
	if res.IterSeconds > 0 {
		res.Throughput = float64(batch) / res.IterSeconds * float64(topo.NumGPUs())
	}
	return res
}

// swapEntry pairs a buffer with its last-use op index.
type swapEntry struct {
	id   int
	last int
}

// lruHeap pops the LEAST recently used entry first.
type lruHeap []swapEntry

func (h lruHeap) Len() int            { return len(h) }
func (h lruHeap) Less(i, j int) bool  { return h[i].last < h[j].last }
func (h lruHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *lruHeap) Push(x interface{}) { *h = append(*h, x.(swapEntry)) }
func (h *lruHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
