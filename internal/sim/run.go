package sim

import (
	"strconv"

	"tofu/internal/graphgen"
	"tofu/internal/memplan"
	"tofu/internal/obs"
)

// Result is one simulated training iteration.
type Result struct {
	// IterSeconds is the end-to-end time of one iteration on the slowest
	// engine.
	IterSeconds float64
	// ComputeSeconds is the pure-kernel time (communication removed) — the
	// light-colored portion of Figure 10's bars.
	ComputeSeconds float64
	// CommSeconds is the total busy time of the communication engine.
	CommSeconds float64
	// Throughput is samples/second for the whole machine.
	Throughput float64
	// Mem is the per-worker memory planner report; OOM mirrors Fits.
	Mem memplan.Report
	OOM bool
}

// RunOptions tweak a simulation run.
type RunOptions struct {
	// DisableComm zeroes all communication (Figure 10's compute-only
	// measurement mode: "we modify the backend to skip memory copy among
	// GPUs").
	DisableComm bool
	// Replicas scales throughput for data-parallel-style baselines that run
	// one graph per GPU (Ideal/SmallBatch/Swap multiply by 8 — Sec 7.1
	// scales single-GPU throughput without modeling communication, as the
	// paper's upper-bound baselines do).
	Replicas int
	// Timeline, if non-nil, receives the run's virtual-clock execution
	// events for the representative worker: one compute lane plus one
	// transfer lane per interconnect level crossed, in virtual seconds.
	// nil (the default) records nothing; the priced times are identical
	// either way.
	Timeline *obs.Timeline
}

// eachTransferLevel walks a per-level byte breakdown: each bucket crosses
// its own interconnect tier, so each is priced at that tier's bandwidth. On
// a single-level topology the whole payload goes to level 0. Both the
// pricing (transferTime) and the timeline emission share this walk, so the
// exported lanes decompose exactly the seconds the simulator charges.
func eachTransferLevel(topo Topology, byLevel []float64, total float64, fn func(level int, seconds, bytes float64)) {
	if len(byLevel) == 0 {
		fn(0, total/topo.LevelBandwidth(0), total)
		return
	}
	for l, b := range byLevel {
		if b > 0 {
			fn(l, b/topo.LevelBandwidth(l), b)
		}
	}
}

// transferTime prices a per-level byte breakdown.
func transferTime(topo Topology, byLevel []float64, total float64) float64 {
	t := 0.0
	eachTransferLevel(topo, byLevel, total, func(_ int, seconds, _ float64) { t += seconds })
	return t
}

// emitTransfer records one comm-engine transfer as per-level events on the
// representative worker's "w0/xfer-L<level>" lanes, back to back from
// start — the comm engine serializes the level crossings the same way
// transferTime sums them.
func emitTransfer(tl *obs.Timeline, kind, op string, start float64, topo Topology, byLevel []float64, total float64) {
	cursor := start
	eachTransferLevel(topo, byLevel, total, func(level int, seconds, bytes float64) {
		tl.Add(obs.Event{
			Lane:  "w0/xfer-L" + strconv.Itoa(level),
			Name:  kind + " " + op,
			Kind:  kind,
			Start: cursor,
			Dur:   seconds,
			Bytes: int64(bytes),
			Level: level,
		})
		cursor += seconds
	})
}

// Run simulates one training iteration of a sharded execution on one
// (representative, symmetric) worker: a compute engine executes kernels in
// topological order while a communication engine overlaps MultiFetch and
// reduction transfers; producers gate consumers. Each transfer is priced at
// the bandwidth of the interconnect level it crosses (its plan step's level
// annotation) — on a flat topology that is the single peer bandwidth.
func Run(sh *graphgen.Sharded, topo Topology, batch int64, memOpts memplan.Options, ro RunOptions) Result {
	hw := topo.HW
	var res Result
	res.Mem = memplan.Plan(sh, memOpts)
	res.OOM = !res.Mem.Fits(hw.GPUMemBytes)

	ready := make(map[int]float64, len(sh.Ops)) // tensor ID -> available time
	var computeFree, commFree float64
	for _, os := range sh.Ops {
		depReady := 0.0
		for _, in := range os.Node.Inputs {
			if t := ready[in.ID]; t > depReady {
				depReady = t
			}
		}
		// MultiFetch of remote input regions on the comm engine. Peers run
		// the same schedule, so remote producers finish when local ones do.
		startReady := depReady
		if !ro.DisableComm && os.FetchBytes > 0 {
			fs := maxf(commFree, depReady)
			fe := fs + transferTime(topo, os.FetchByLevel, os.FetchBytes)
			if ro.Timeline.Enabled() {
				emitTransfer(ro.Timeline, "fetch", os.Node.Op, fs, topo, os.FetchByLevel, os.FetchBytes)
			}
			commFree = fe
			res.CommSeconds += fe - fs
			startReady = fe
		}
		kt := KernelTime(hw, os)
		cs := maxf(computeFree, startReady)
		ce := cs + kt
		if ro.Timeline.Enabled() {
			ro.Timeline.Add(obs.Event{
				Lane: "w0/compute", Name: os.Node.Op, Kind: "compute",
				Start: cs, Dur: kt, Level: -1,
			})
		}
		computeFree = ce
		res.ComputeSeconds += kt

		avail := ce
		if !ro.DisableComm && os.OutCommBytes > 0 {
			rs := maxf(commFree, ce)
			re := rs + transferTime(topo, os.OutByLevel, os.OutCommBytes)
			if ro.Timeline.Enabled() {
				emitTransfer(ro.Timeline, "reduce", os.Node.Op, rs, topo, os.OutByLevel, os.OutCommBytes)
			}
			commFree = re
			res.CommSeconds += re - rs
			avail = re
		}
		ready[os.Node.Output.ID] = avail
	}

	res.IterSeconds = maxf(computeFree, commFree)
	if res.IterSeconds > 0 {
		replicas := 1
		if ro.Replicas > 1 {
			replicas = ro.Replicas
		}
		res.Throughput = float64(batch) / res.IterSeconds * float64(replicas)
	}
	return res
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
