package sim

import (
	"sort"
	"strings"
	"sync"
)

// KernelClass buckets operators by their performance regime: dense linear
// algebra runs on the matmul efficiency curve, convolutions on the conv
// curve, and everything else is memory-bandwidth bound.
type KernelClass int

const (
	ClassMatmul KernelClass = iota
	ClassConv
	ClassMemBound
)

func (c KernelClass) String() string {
	switch c {
	case ClassMatmul:
		return "matmul"
	case ClassConv:
		return "conv"
	default:
		return "membound"
	}
}

// kernelClasses is the explicit class table for every operator in the
// standard TDL registry. The simulator's cost model consults it before the
// prefix heuristics, so no standard operator is classified by fallthrough —
// TestStandardRegistryClassifiesIntentionally enforces full coverage.
var (
	kernelClassMu sync.RWMutex
	kernelClasses = map[string]KernelClass{
		// Dense linear algebra: the matmul efficiency curve.
		"matmul": ClassMatmul, "matmul_nt": ClassMatmul, "matmul_tn": ClassMatmul,
		// Attention kernels are batched matmuls (the old prefix switch let
		// bmm/linear3d fall through to memory-bound).
		"bmm": ClassMatmul, "bmm_nt": ClassMatmul, "bmm_tn": ClassMatmul,
		"linear3d": ClassMatmul, "linear3d_bwd_data": ClassMatmul, "linear3d_bwd_weight": ClassMatmul,
		// Batched dense solvers/factorizations.
		"batch_cholesky": ClassMatmul, "batch_inverse": ClassMatmul,
		"batch_lu": ClassMatmul, "batch_trsm": ClassMatmul,

		// Convolutions: the conv efficiency curve.
		"conv1d": ClassConv, "conv2d": ClassConv,
		"conv2d_bwd_data": ClassConv, "conv2d_bwd_weight": ClassConv,
		"depthwise_conv2d": ClassConv, "dilated_conv2d": ClassConv,

		// Everything below is memory-bandwidth bound.
		// Elementwise unary.
		"abs": ClassMemBound, "arccos": ClassMemBound, "arcsin": ClassMemBound,
		"arctan": ClassMemBound, "cast": ClassMemBound, "cbrt": ClassMemBound,
		"ceil": ClassMemBound, "cos": ClassMemBound, "cosh": ClassMemBound,
		"degrees": ClassMemBound, "dropout": ClassMemBound, "dropout_grad": ClassMemBound,
		"elu": ClassMemBound, "elu_grad": ClassMemBound, "erf": ClassMemBound,
		"exp": ClassMemBound, "exp2": ClassMemBound, "expm1": ClassMemBound,
		"floor": ClassMemBound, "gamma_fn": ClassMemBound, "gammaln": ClassMemBound,
		"gelu": ClassMemBound, "gelu_grad": ClassMemBound, "hard_sigmoid": ClassMemBound,
		"identity": ClassMemBound, "leaky_relu": ClassMemBound, "leaky_relu_grad": ClassMemBound,
		"log": ClassMemBound, "log10": ClassMemBound, "log1p": ClassMemBound,
		"log2": ClassMemBound, "logical_not": ClassMemBound, "mish": ClassMemBound,
		"negate": ClassMemBound, "ones_like": ClassMemBound, "radians": ClassMemBound,
		"reciprocal": ClassMemBound, "relu": ClassMemBound, "relu_grad": ClassMemBound,
		"round": ClassMemBound, "rsqrt": ClassMemBound, "scale": ClassMemBound,
		"selu": ClassMemBound, "sigmoid": ClassMemBound, "sigmoid_grad": ClassMemBound,
		"sign": ClassMemBound, "sin": ClassMemBound, "sinh": ClassMemBound,
		"softplus": ClassMemBound, "softplus_grad": ClassMemBound, "softsign": ClassMemBound,
		"sqrt": ClassMemBound, "square": ClassMemBound, "swish": ClassMemBound,
		"swish_grad": ClassMemBound, "tan": ClassMemBound, "tanh": ClassMemBound,
		"tanh_grad": ClassMemBound, "zeros_like": ClassMemBound,
		// Elementwise binary/ternary.
		"add": ClassMemBound, "arctan2": ClassMemBound, "clip": ClassMemBound,
		"clip_grad": ClassMemBound, "div": ClassMemBound, "equal": ClassMemBound,
		"fma": ClassMemBound, "greater": ClassMemBound, "greater_equal": ClassMemBound,
		"hypot": ClassMemBound, "lesser": ClassMemBound, "lesser_equal": ClassMemBound,
		"logical_and": ClassMemBound, "logical_or": ClassMemBound, "logical_xor": ClassMemBound,
		"maximum": ClassMemBound, "minimum": ClassMemBound, "mod": ClassMemBound,
		"mul": ClassMemBound, "not_equal": ClassMemBound, "power": ClassMemBound,
		"smooth_l1": ClassMemBound, "smooth_l1_grad": ClassMemBound, "sub": ClassMemBound,
		"where": ClassMemBound,
		// Reductions, broadcasts and data movement.
		"absmax_per_channel": ClassMemBound, "bias_add": ClassMemBound,
		"bouter": ClassMemBound, "broadcast_add_col": ClassMemBound,
		"broadcast_div_col": ClassMemBound, "broadcast_mul_col": ClassMemBound,
		"broadcast_mul_row": ClassMemBound, "btranspose": ClassMemBound,
		"gather_rows": ClassMemBound, "l2_normalize": ClassMemBound,
		"last_token": ClassMemBound, "last_token_grad": ClassMemBound,
		"one_hot": ClassMemBound, "reduce_max_axis0": ClassMemBound,
		"reduce_max_axis1": ClassMemBound, "reduce_min_axis0": ClassMemBound,
		"reduce_min_axis1": ClassMemBound, "reduce_prod_axis0": ClassMemBound,
		"reduce_prod_axis1": ClassMemBound, "reduce_sum_axis0": ClassMemBound,
		"reduce_sum_axis1": ClassMemBound, "repeat_row": ClassMemBound,
		"reverse_axis1": ClassMemBound, "scale_shift_nchw": ClassMemBound,
		"slice_axis0": ClassMemBound,
		"slice_axis1": ClassMemBound, "slice_axis1_grad": ClassMemBound,
		"sqnorm_axis1": ClassMemBound, "stride_rows": ClassMemBound,
		"transpose": ClassMemBound,
		// Pooling and normalization.
		"avgpool2d": ClassMemBound, "global_avgpool": ClassMemBound,
		"global_avgpool_grad": ClassMemBound, "maxpool2d": ClassMemBound,
		"maxpool2d_grad": ClassMemBound,
		"bn_beta_grad":   ClassMemBound, "bn_data_grad": ClassMemBound,
		"bn_gamma_grad": ClassMemBound, "bn_mean": ClassMemBound,
		"bn_norm": ClassMemBound, "bn_var": ClassMemBound,
		"ln3_beta_grad": ClassMemBound, "ln3_data_grad": ClassMemBound,
		"ln3_gamma_grad": ClassMemBound, "ln3_mean": ClassMemBound,
		"ln3_norm": ClassMemBound, "ln3_var": ClassMemBound,
		"ln_mean": ClassMemBound, "ln_norm": ClassMemBound, "ln_var": ClassMemBound,
		// Softmax/loss and optimizer updates.
		"log_softmax": ClassMemBound, "softmax": ClassMemBound,
		"softmax_axis2": ClassMemBound, "softmax_axis2_grad": ClassMemBound,
		"softmax_ce_grad": ClassMemBound,
		"adam_update":     ClassMemBound, "sgd_mom_update": ClassMemBound,
		"sgd_update": ClassMemBound,
	}
)

// RegisterKernelClass installs (or overrides) the class of an operator —
// custom TDL operators registered via tofu.RegisterOp can pair with an
// explicit class instead of relying on the prefix fallback.
func RegisterKernelClass(op string, c KernelClass) {
	kernelClassMu.Lock()
	defer kernelClassMu.Unlock()
	kernelClasses[op] = c
}

// HasKernelClass reports whether an operator has an explicit table entry
// (as opposed to being classified by the prefix fallback).
func HasKernelClass(op string) bool {
	kernelClassMu.RLock()
	defer kernelClassMu.RUnlock()
	_, ok := kernelClasses[op]
	return ok
}

// KernelClassNames lists every operator with an explicit class, sorted.
func KernelClassNames() []string {
	kernelClassMu.RLock()
	defer kernelClassMu.RUnlock()
	names := make([]string, 0, len(kernelClasses))
	for n := range kernelClasses {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Classify maps an operator to its performance class: the explicit table
// first, then prefix heuristics for unregistered custom operators.
func Classify(op string) KernelClass {
	kernelClassMu.RLock()
	c, ok := kernelClasses[op]
	kernelClassMu.RUnlock()
	if ok {
		return c
	}
	switch {
	case strings.HasPrefix(op, "matmul"):
		return ClassMatmul
	case strings.HasPrefix(op, "conv"):
		return ClassConv
	case strings.HasPrefix(op, "batch_"): // batched dense linear algebra
		return ClassMatmul
	default:
		return ClassMemBound
	}
}
