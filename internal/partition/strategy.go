// Package partition discovers the basic partition-n-reduce strategies of an
// operator from its TDL description (EuroSys'19 Sec 4.2) and prices the
// communication each strategy incurs under a tensor-cut assignment
// (Lemma 1). A *basic* strategy partitions the operator's work along exactly
// one axis among k worker groups; the recursive search composes basic
// strategies into multi-dimensional plans.
//
//tofu:searchpath reachable from dp.Solve / recursive.Partition; nodeterm enforces determinism
package partition

import (
	"fmt"

	"tofu/internal/shape"
	"tofu/internal/tdl"
)

// Kind distinguishes the two cases of partition-n-reduce (Sec 3.1).
type Kind int

const (
	// SplitOutput is "case 1": each worker computes a slab of the output
	// along one output dimension; the final output is the concatenation.
	SplitOutput Kind = iota
	// SplitReduce is "case 2": each worker computes a full-size partial
	// output restricted to a slab of one reduction axis; the final output is
	// the element-wise reduction of the partials (output reduction).
	SplitReduce
)

func (k Kind) String() string {
	if k == SplitOutput {
		return "output"
	}
	return "reduce"
}

// Strategy is one basic partition strategy of an operator.
type Strategy struct {
	Kind    Kind
	Axis    string      // the partitioned axis name
	OutDim  int         // output dimension index (SplitOutput); -1 otherwise
	Reducer tdl.Reducer // aggregation for SplitReduce; NoReduce otherwise
}

func (s Strategy) String() string {
	if s.Kind == SplitOutput {
		return fmt.Sprintf("split-out(%s/dim%d)", s.Axis, s.OutDim)
	}
	return fmt.Sprintf("split-reduce(%s/%s)", s.Axis, s.Reducer)
}

// Enumerate lists every basic partition strategy of the described operator:
// one per (non-opaque) output dimension and one per top-level reduction
// axis. This is the automatic replacement for the manual per-layer discovery
// of prior work; in particular it never "forgets" the output-reduction
// strategies that ICML18 missed (Sec 7.3).
func Enumerate(desc *tdl.OpDesc) []Strategy {
	var out []Strategy
	for i, ax := range desc.OutAxes {
		if desc.OpaqueOutAxis(ax) {
			continue // produced inside an opaque function: not partitionable
		}
		out = append(out, Strategy{Kind: SplitOutput, Axis: ax, OutDim: i})
	}
	if red := desc.TopReducer(); red != tdl.NoReduce {
		for _, ra := range desc.ReduceAxes() {
			out = append(out, Strategy{Kind: SplitReduce, Axis: ra.Name, OutDim: -1, Reducer: red})
		}
	}
	return out
}

// Spec bundles an operator instance: its description plus concrete shapes.
type Spec struct {
	Desc     *tdl.OpDesc
	InShapes []shape.Shape
	OutShape shape.Shape
	DType    shape.DType
}

// Validate checks that the spec's shapes match the description's ranks.
func (sp *Spec) Validate() error {
	if len(sp.InShapes) != len(sp.Desc.Inputs) {
		return fmt.Errorf("partition: op %s expects %d inputs, got %d",
			sp.Desc.Name, len(sp.Desc.Inputs), len(sp.InShapes))
	}
	for i, p := range sp.Desc.Inputs {
		if sp.InShapes[i].Rank() != p.Rank {
			return fmt.Errorf("partition: op %s input %s has rank %d, shape %v",
				sp.Desc.Name, p.Name, p.Rank, sp.InShapes[i])
		}
	}
	if sp.OutShape.Rank() != len(sp.Desc.OutAxes) {
		return fmt.Errorf("partition: op %s output rank %d, shape %v",
			sp.Desc.Name, len(sp.Desc.OutAxes), sp.OutShape)
	}
	return nil
}

// Applicable reports whether the strategy can divide this instance's work
// into k equal parts (the partitioned extent must divide evenly).
func (sp *Spec) Applicable(s Strategy, k int64) bool {
	if k <= 1 {
		return k == 1
	}
	if s.Kind == SplitOutput {
		return sp.OutShape.CanSplit(s.OutDim, k)
	}
	ext, err := sp.reduceExtent(s.Axis)
	if err != nil {
		return false
	}
	return ext >= k && ext%k == 0
}

// reduceExtent resolves the concrete extent of a top-level reduction axis.
func (sp *Spec) reduceExtent(axis string) (int64, error) {
	return ReduceExtent(sp.Desc, sp.InShapes, axis)
}

// ReduceExtent resolves the concrete extent of a named top-level reduction
// axis against a set of input shapes (which need not be the spec's own — the
// recursive search checks divisibility against current, already-divided
// shapes while pricing at original ones).
func ReduceExtent(desc *tdl.OpDesc, inShapes []shape.Shape, axis string) (int64, error) {
	for _, ra := range desc.ReduceAxes() {
		if ra.Name != axis {
			continue
		}
		if ra.Extent.Input == "" {
			return ra.Extent.Const, nil
		}
		idx := desc.InputIndex(ra.Extent.Input)
		if idx < 0 {
			return 0, fmt.Errorf("partition: axis %s bound to unknown input %s", axis, ra.Extent.Input)
		}
		return inShapes[idx].Dim(ra.Extent.Dim), nil
	}
	return 0, fmt.Errorf("partition: op %s has no reduce axis %s", desc.Name, axis)
}
