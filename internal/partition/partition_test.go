package partition

import (
	"math"
	"testing"
	"testing/quick"

	"tofu/internal/shape"
	"tofu/internal/tdl"
)

func spec(t *testing.T, op string, attrs tdl.Attrs, out shape.Shape, ins ...shape.Shape) *Spec {
	t.Helper()
	d, err := tdl.Std.Describe(op, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{Desc: d, InShapes: ins, OutShape: out, DType: shape.Float32}
}

func findStrategy(t *testing.T, ss []Strategy, kind Kind, axis string) Strategy {
	t.Helper()
	for _, s := range ss {
		if s.Kind == kind && s.Axis == axis {
			return s
		}
	}
	t.Fatalf("strategy %v/%s not found in %v", kind, axis, ss)
	return Strategy{}
}

func TestEnumerateConv1d(t *testing.T) {
	d, err := tdl.Std.Describe("conv1d", nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := Enumerate(d)
	// 3 output axes (b, co, x) + 2 reduce axes (ci, dx) = 5 strategies,
	// matching Sec 4.2's discussion of conv1d.
	if len(ss) != 5 {
		t.Fatalf("conv1d strategies = %d (%v), want 5", len(ss), ss)
	}
	findStrategy(t, ss, SplitOutput, "b")
	findStrategy(t, ss, SplitOutput, "co")
	findStrategy(t, ss, SplitOutput, "x")
	findStrategy(t, ss, SplitReduce, "ci")
	findStrategy(t, ss, SplitReduce, "dx")
}

func TestEnumerateOpaque(t *testing.T) {
	d, err := tdl.Std.Describe("batch_cholesky", nil)
	if err != nil {
		t.Fatal(err)
	}
	ss := Enumerate(d)
	if len(ss) != 1 || ss[0].Axis != "b" || ss[0].Kind != SplitOutput {
		t.Fatalf("batch_cholesky strategies = %v, want only split-out(b)", ss)
	}
}

func TestEnumerateElementwise(t *testing.T) {
	d, err := tdl.Std.Describe("add", tdl.Attrs{"rank": 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(Enumerate(d)); got != 3 {
		t.Fatalf("add/3 strategies = %d, want 3", got)
	}
}

// --- matmul cost sanity: the worked example behind Fig 6 -----------------

func matmulSpec(t *testing.T, m, k, n int64) *Spec {
	return spec(t, "matmul", nil, shape.Of(m, n), shape.Of(m, k), shape.Of(k, n))
}

func TestMatmulRowSplitCost(t *testing.T) {
	sp := matmulSpec(t, 128, 256, 512)
	row := findStrategy(t, Enumerate(sp.Desc), SplitOutput, "i")

	// All tensors cut by rows (dim 0): A aligned, B fully fetched, C aligned.
	bd, err := Cost(sp, row, 2, []Cut{{0}, {0}}, Cut{0})
	if err != nil {
		t.Fatal(err)
	}
	sB := float64(shape.Of(256, 512).Bytes(shape.Float32))
	if bd.InputBytes[0] != 0 {
		t.Errorf("A fetch = %g, want 0 (aligned)", bd.InputBytes[0])
	}
	if !close(bd.InputBytes[1], sB) {
		t.Errorf("B fetch = %g, want full S_B = %g", bd.InputBytes[1], sB)
	}
	if bd.OutputBytes != 0 {
		t.Errorf("output bytes = %g, want 0", bd.OutputBytes)
	}
	if !close(bd.Total, sB) {
		t.Errorf("total = %g, want %g", bd.Total, sB)
	}
}

func TestMatmulReduceSplitCost(t *testing.T) {
	sp := matmulSpec(t, 128, 256, 512)
	red := findStrategy(t, Enumerate(sp.Desc), SplitReduce, "k")

	// A cut by columns, B cut by rows: perfectly aligned inputs; output is a
	// reduce-scatter costing (k-1)·S_C. This is the output-reduction
	// strategy ICML18 misses (Sec 7.3).
	bd, err := Cost(sp, red, 2, []Cut{{1}, {0}}, Cut{0})
	if err != nil {
		t.Fatal(err)
	}
	if bd.InputBytes[0] != 0 || bd.InputBytes[1] != 0 {
		t.Errorf("aligned reduce-split should fetch nothing, got %v", bd.InputBytes)
	}
	sC := float64(shape.Of(128, 512).Bytes(shape.Float32))
	if !close(bd.OutputBytes, sC) {
		t.Errorf("output bytes = %g, want (k-1)·S_C = %g", bd.OutputBytes, sC)
	}
}

func TestMatmulCrossCutCost(t *testing.T) {
	sp := matmulSpec(t, 128, 256, 512)
	row := findStrategy(t, Enumerate(sp.Desc), SplitOutput, "i")

	// A cut along columns while the strategy needs rows: (k-1)/k · S_A.
	bd, err := Cost(sp, row, 2, []Cut{{1}, {0}}, Cut{0})
	if err != nil {
		t.Fatal(err)
	}
	sA := float64(shape.Of(128, 256).Bytes(shape.Float32))
	if !close(bd.InputBytes[0], sA/2) {
		t.Errorf("cross-cut A fetch = %g, want S_A/2 = %g", bd.InputBytes[0], sA/2)
	}
}

func TestMatmulOutputRedistribution(t *testing.T) {
	sp := matmulSpec(t, 128, 256, 512)
	row := findStrategy(t, Enumerate(sp.Desc), SplitOutput, "i")

	// Output tensor cut along columns while the strategy produces row slabs.
	bd, err := Cost(sp, row, 2, []Cut{{0}, {0}}, Cut{1})
	if err != nil {
		t.Fatal(err)
	}
	sC := float64(shape.Of(128, 512).Bytes(shape.Float32))
	if !close(bd.OutputBytes, sC/2) {
		t.Errorf("output redistribution = %g, want S_C/2 = %g", bd.OutputBytes, sC/2)
	}
}

func TestKWayFullFetch(t *testing.T) {
	// Full-tensor requirement costs (k-1)·S for any k.
	for _, k := range []int64{2, 4, 8} {
		sp := matmulSpec(t, 128, 256, 512)
		row := findStrategy(t, Enumerate(sp.Desc), SplitOutput, "i")
		bd, err := Cost(sp, row, k, []Cut{{0}, {0}}, Cut{0})
		if err != nil {
			t.Fatal(err)
		}
		sB := float64(shape.Of(256, 512).Bytes(shape.Float32))
		want := sB * float64(k-1)
		if !close(bd.InputBytes[1], want) {
			t.Errorf("k=%d: B fetch = %g, want (k-1)·S_B = %g", k, bd.InputBytes[1], want)
		}
	}
}

func TestConvHaloCost(t *testing.T) {
	// conv1d split along the pixel axis x: halo exchange on data dim 2.
	sp := spec(t, "conv1d", nil,
		shape.Of(8, 16, 64), // output (b, co, x)
		shape.Of(8, 32, 64), // data (b, ci, x)
		shape.Of(32, 16, 3), // filters (ci, co, dx)
	)
	x := findStrategy(t, Enumerate(sp.Desc), SplitOutput, "x")
	bd, err := Cost(sp, x, 2, []Cut{{2}, {0}}, Cut{2})
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 needs data[:, :, 0:35] (32 own + 3 halo), worker 1 needs
	// [32:64]: only worker 0 fetches, 8·32·3 elements · 4 bytes.
	want := float64(8*32*3*4) * (35.0 - 32.0) / 35.0 * 35.0 / 3.0 // = 8·32·3·4
	_ = want
	halo := float64(8 * 32 * 3 * 4)
	if !close(bd.InputBytes[0], halo) {
		t.Errorf("halo fetch = %g, want %g", bd.InputBytes[0], halo)
	}
	// filters are needed in full by both workers but cut along ci:
	// each fetches the remote half.
	sF := float64(shape.Of(32, 16, 3).Bytes(shape.Float32))
	if !close(bd.InputBytes[1], sF) {
		t.Errorf("filters fetch = %g, want %g", bd.InputBytes[1], sF)
	}
}

func TestApplicability(t *testing.T) {
	sp := matmulSpec(t, 6, 256, 512)
	row := findStrategy(t, Enumerate(sp.Desc), SplitOutput, "i")
	if sp.Applicable(row, 4) {
		t.Error("m=6 must not split 4 ways")
	}
	if !sp.Applicable(row, 2) {
		t.Error("m=6 splits 2 ways")
	}
	red := findStrategy(t, Enumerate(sp.Desc), SplitReduce, "k")
	if !sp.Applicable(red, 8) {
		t.Error("k=256 splits 8 ways")
	}
	if !sp.Applicable(row, 1) {
		t.Error("k=1 is trivially applicable")
	}
	if sp.Applicable(row, 0) {
		t.Error("k=0 must be rejected")
	}
}

func TestBestStrategyPrefersReduce(t *testing.T) {
	// A tall-thin matmul where S_B >> S_C: output reduction must win when
	// inputs are aligned for it.
	sp := matmulSpec(t, 64, 8192, 64) // A 64x8192, B 8192x64, C 64x64
	s, bd, err := BestStrategy(sp, 2, []Cut{{1}, {0}}, Cut{0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != SplitReduce {
		t.Fatalf("best strategy = %v (cost %g), want output reduction", s, bd.Total)
	}
}

func TestBestStrategyNoOption(t *testing.T) {
	// All extents are primes > k: nothing divides.
	sp := matmulSpec(t, 7, 11, 13)
	if _, _, err := BestStrategy(sp, 4, []Cut{{0}, {0}}, Cut{0}); err == nil {
		t.Fatal("expected no-applicable-strategy error")
	}
}

func TestOutputRegion(t *testing.T) {
	sp := matmulSpec(t, 128, 256, 512)
	row := findStrategy(t, Enumerate(sp.Desc), SplitOutput, "i")
	reg := OutputRegion(sp, row, 4, 1)
	if reg[0].Lo != 32 || reg[0].Hi != 64 {
		t.Errorf("worker1 row slab = %v", reg[0])
	}
	if reg[1].Lo != 0 || reg[1].Hi != 512 {
		t.Errorf("worker1 col range = %v", reg[1])
	}
	red := findStrategy(t, Enumerate(sp.Desc), SplitReduce, "k")
	reg = OutputRegion(sp, red, 4, 1)
	if reg[0].Size() != 128 || reg[1].Size() != 512 {
		t.Errorf("reduce-split output should be full-size, got %v", reg)
	}
}

func TestInputRegionsConv1dFigure2(t *testing.T) {
	// Reproduce Figure 2(a): split along b — each worker reads half of data
	// (b dimension) and all of filters.
	sp := spec(t, "conv1d", nil,
		shape.Of(8, 16, 64), shape.Of(8, 32, 64), shape.Of(32, 16, 3))
	b := findStrategy(t, Enumerate(sp.Desc), SplitOutput, "b")
	regs, err := InputRegions(sp, b, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := regs[0]
	if data[0].Lo != 0 || data[0].Hi != 4 {
		t.Errorf("data b-range = %v, want [0,4)", data[0])
	}
	filters := regs[1]
	for d, r := range filters {
		if r.Lo != 0 || r.Hi != float64(sp.InShapes[1].Dim(d)) {
			t.Errorf("filters dim %d = %v, want full", d, r)
		}
	}

	// Figure 2(b): split along ci — each worker reads half of data along
	// the channel dim and half of filters along dim 0.
	ci := findStrategy(t, Enumerate(sp.Desc), SplitReduce, "ci")
	regs, err = InputRegions(sp, ci, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if regs[0][1].Lo != 16 || regs[0][1].Hi != 32 {
		t.Errorf("data ci-range = %v, want [16,32)", regs[0][1])
	}
	if regs[1][0].Lo != 16 || regs[1][0].Hi != 32 {
		t.Errorf("filters ci-range = %v, want [16,32)", regs[1][0])
	}
}

func TestOpaqueRegions(t *testing.T) {
	sp := spec(t, "batch_cholesky", nil,
		shape.Of(16, 32, 32), shape.Of(16, 32, 32))
	s := Enumerate(sp.Desc)[0]
	regs, err := InputRegions(sp, s, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := regs[0]
	if r[0].Lo != 8 || r[0].Hi != 12 {
		t.Errorf("batch range = %v, want [8,12)", r[0])
	}
	if r[1].Size() != 32 || r[2].Size() != 32 {
		t.Errorf("matrix dims must be full, got %v", r)
	}
}

// Property: for any divisible k, summing each worker's required elements for
// an elementwise op equals exactly the input size (no overlap, no gap).
func TestQuickElementwiseCover(t *testing.T) {
	d, err := tdl.Std.Describe("relu", tdl.Attrs{"rank": 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8, axis bool) bool {
		rows := int64(a%16+1) * 8
		cols := int64(b%16+1) * 8
		sp := &Spec{Desc: d, InShapes: []shape.Shape{shape.Of(rows, cols)},
			OutShape: shape.Of(rows, cols), DType: shape.Float32}
		dim := 0
		if axis {
			dim = 1
		}
		s := Strategy{Kind: SplitOutput, Axis: d.OutAxes[dim], OutDim: dim}
		total := 0.0
		for w := int64(0); w < 8; w++ {
			regs, err := InputRegions(sp, s, 8, w)
			if err != nil {
				return false
			}
			total += regs[0].Elems()
		}
		return close(total, float64(rows*cols))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: cost is never negative and aligned elementwise plans are free.
func TestQuickElementwiseAlignedFree(t *testing.T) {
	d, err := tdl.Std.Describe("add", tdl.Attrs{"rank": 2})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a uint8, axis bool) bool {
		n := int64(a%16+1) * 8
		sp := &Spec{Desc: d, InShapes: []shape.Shape{shape.Of(n, n), shape.Of(n, n)},
			OutShape: shape.Of(n, n), DType: shape.Float32}
		dim := 0
		if axis {
			dim = 1
		}
		s := Strategy{Kind: SplitOutput, Axis: d.OutAxes[dim], OutDim: dim}
		bd, err := Cost(sp, s, 2, []Cut{{dim}, {dim}}, Cut{dim})
		if err != nil {
			return false
		}
		return bd.Total == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-6*(1+math.Abs(a)+math.Abs(b))
}
