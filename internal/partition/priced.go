package partition

import (
	"fmt"
	"math"
)

// Priced caches the interval-analysis results for one operator instance at
// one recursive step, so the DP's inner loop prices (strategy, cuts)
// combinations with plain arithmetic instead of re-running symbolic
// execution. Regions depend only on (description, strategy, k, worker) —
// never on the tensor cuts — which is what makes this cache exact.
type Priced struct {
	Spec       *Spec
	K          int64
	Strategies []Strategy

	regions  [][][]Region // [strategy][worker][input]
	outBytes float64
}

// Price runs the region analysis for every applicable strategy. filter, if
// non-nil, drops strategies before analysis — the ICML18 baseline uses it to
// discard output-reduction strategies (Sec 7.3).
func Price(sp *Spec, k int64, filter func(Strategy) bool) (*Priced, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	p := &Priced{Spec: sp, K: k, outBytes: float64(sp.OutShape.Bytes(sp.DType))}
	for _, s := range Enumerate(sp.Desc) {
		if filter != nil && !filter(s) {
			continue
		}
		if !sp.Applicable(s, k) {
			continue
		}
		perWorker := make([][]Region, k)
		for w := int64(0); w < k; w++ {
			regs, err := InputRegions(sp, s, k, w)
			if err != nil {
				return nil, err
			}
			perWorker[w] = regs
		}
		p.Strategies = append(p.Strategies, s)
		p.regions = append(p.regions, perWorker)
	}
	if len(p.Strategies) == 0 {
		return nil, fmt.Errorf("partition: no applicable strategy for %s at k=%d", sp.Desc.Name, k)
	}
	return p, nil
}

// Restrict returns a view of p holding only the strategies keep accepts,
// in the original enumeration order. The view shares the underlying region
// analyses, so restricting a cached full pricing to one recursive step's
// applicable strategies costs a few slice appends instead of re-running the
// symbolic interval analysis (see dp.PriceCache).
func (p *Priced) Restrict(keep func(Strategy) bool) (*Priced, error) {
	out := &Priced{
		Spec: p.Spec, K: p.K, outBytes: p.outBytes,
		Strategies: make([]Strategy, 0, len(p.Strategies)),
		regions:    make([][][]Region, 0, len(p.Strategies)),
	}
	for si, s := range p.Strategies {
		if keep != nil && !keep(s) {
			continue
		}
		out.Strategies = append(out.Strategies, s)
		out.regions = append(out.regions, p.regions[si])
	}
	if len(out.Strategies) == 0 {
		return nil, fmt.Errorf("partition: no applicable strategy for %s at k=%d", p.Spec.Desc.Name, p.K)
	}
	return out, nil
}

// Parts itemizes a strategy's communication into the input-fetch bytes
// (MultiFetch traffic before the kernel runs) and the output bytes
// (redistribution or reduction after it), summed across all workers.
type Parts struct {
	InBytes  float64
	OutBytes float64
}

// Total returns InBytes + OutBytes.
func (p Parts) Total() float64 { return p.InBytes + p.OutBytes }

// CostOf prices strategy index si under the given cuts (bytes across all
// workers, Lemma 1).
func (p *Priced) CostOf(si int, inCuts []Cut, outCut Cut) float64 {
	return p.PartsOf(si, inCuts, outCut).Total()
}

// PartsOf prices strategy si with the input/output breakdown.
func (p *Priced) PartsOf(si int, inCuts []Cut, outCut Cut) Parts {
	s := p.Strategies[si]
	elemSize := float64(p.Spec.DType.Size())
	var parts Parts
	for w := int64(0); w < p.K; w++ {
		regs := p.regions[si][w]
		for i, reg := range regs {
			ishape := p.Spec.InShapes[i]
			d := inCuts[i].Dim
			need := reg.Elems()
			if need == 0 {
				continue
			}
			ext := float64(ishape.Dim(d))
			own := Range{Lo: float64(w) / float64(p.K) * ext, Hi: float64(w+1) / float64(p.K) * ext}
			overlap := reg[d].Intersect(own).Size()
			local := need
			if reg[d].Size() > 0 {
				local = need / reg[d].Size() * overlap
			}
			parts.InBytes += math.Max(0, need-local) * elemSize
		}
	}
	switch s.Kind {
	case SplitOutput:
		if s.OutDim != outCut.Dim {
			parts.OutBytes += p.outBytes * float64(p.K-1) / float64(p.K)
		}
	case SplitReduce:
		parts.OutBytes += p.outBytes * float64(p.K-1)
	}
	return parts
}

// Best returns the index and cost of the cheapest strategy under the cuts.
func (p *Priced) Best(inCuts []Cut, outCut Cut) (int, float64) {
	best, bestCost := -1, math.Inf(1)
	for si := range p.Strategies {
		if c := p.CostOf(si, inCuts, outCut); c < bestCost {
			best, bestCost = si, c
		}
	}
	return best, bestCost
}
