package partition

import (
	"fmt"
	"math"

	"tofu/internal/interval"
	"tofu/internal/tdl"
)

// Range is a half-open index range [Lo, Hi) along one tensor dimension,
// clamped to the dimension's extent.
type Range struct{ Lo, Hi float64 }

// Size returns the number of indices covered.
func (r Range) Size() float64 { return math.Max(0, r.Hi-r.Lo) }

// Intersect returns the overlap of two ranges.
func (r Range) Intersect(o Range) Range {
	lo := math.Max(r.Lo, o.Lo)
	hi := math.Min(r.Hi, o.Hi)
	if hi < lo {
		hi = lo
	}
	return Range{Lo: lo, Hi: hi}
}

// Region is the per-dimension bounding box of an input region.
type Region []Range

// Elems returns the number of elements in the box.
func (r Region) Elems() float64 {
	n := 1.0
	for _, d := range r {
		n *= d.Size()
	}
	return n
}

// Frac returns the fraction of the full tensor the region covers.
func (r Region) Frac(s Shapelike) float64 {
	f := 1.0
	for i, d := range r {
		f *= d.Size() / float64(s.Dim(i))
	}
	return f
}

// Shapelike decouples Region helpers from the concrete shape type.
type Shapelike interface{ Dim(i int) int64 }

// InputRegions runs the symbolic interval analysis (Sec 4.2) for worker w of
// k under the given strategy and returns, per operator input, the bounding
// box of the region that worker must read. This is the information Fig 2's
// stripe diagrams visualize.
func InputRegions(sp *Spec, s Strategy, k, w int64) ([]Region, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if k < 1 || w < 0 || w >= k {
		return nil, fmt.Errorf("partition: worker %d of %d out of range", w, k)
	}
	desc := sp.Desc

	// Build the symbol space: output axes, top-level reduce axes, nested
	// reduce axes.
	names := append([]string(nil), desc.OutAxes...)
	for _, ra := range desc.ReduceAxes() {
		names = append(names, ra.Name)
	}
	for _, ra := range desc.NestedReduceAxes() {
		names = append(names, ra.Name)
	}
	space := interval.NewSpace(names...)

	// Resolve the concrete extent of every symbol.
	extents := make([]float64, len(names))
	for i, ax := range desc.OutAxes {
		extents[space.IndexOf(ax)] = float64(sp.OutShape.Dim(i))
	}
	for _, ra := range append(append([]tdl.ReduceAxis(nil), desc.ReduceAxes()...), desc.NestedReduceAxes()...) {
		ext, err := resolveExtent(sp, ra)
		if err != nil {
			return nil, err
		}
		extents[space.IndexOf(ra.Name)] = ext
	}

	// Environment: the split axis gets the worker's share [w/k·X,(w+1)/k·X];
	// every other axis gets its full range [0, X]. This mirrors the paper's
	// two analysis runs with ZV[u_b = 1/2] and ZV[l_b = 1/2, u_b = 1].
	env := make(map[string]interval.Interval, len(names))
	for _, n := range names {
		var iv interval.Interval
		var err error
		if n == s.Axis {
			iv, err = interval.Span(space, n, float64(w)/float64(k), float64(w+1)/float64(k), 0, 0)
		} else {
			iv, err = interval.Variable(space, n)
		}
		if err != nil {
			return nil, err
		}
		env[n] = iv
	}

	// Start each input region empty; union in every access box.
	regions := make([]Region, len(desc.Inputs))
	seen := make([]bool, len(desc.Inputs))
	for i, p := range desc.Inputs {
		regions[i] = make(Region, p.Rank)
	}

	for _, ta := range desc.AllAccesses() {
		ti := desc.InputIndex(ta.Access.Tensor)
		ishape := sp.InShapes[ti]
		for d, ix := range ta.Access.Index {
			iv, err := ix.Eval(space, env)
			if err != nil {
				return nil, fmt.Errorf("partition: op %s input %s dim %d: %w", desc.Name, ta.Access.Tensor, d, err)
			}
			lo, hi, err := iv.Concretize(extents)
			if err != nil {
				return nil, err
			}
			// Constant-index dims (e.g. an opaque Full dim encoded as 0, or a
			// literal offset) cover a single position unless marked Full.
			if len(ix.Terms) == 0 && !isOpaqueFullDim(desc, ta.Access, d) {
				hi = lo + 1
			}
			hi = math.Min(hi, float64(ishape.Dim(d)))
			lo = math.Max(lo, 0)
			if isOpaqueFullDim(desc, ta.Access, d) {
				lo, hi = 0, float64(ishape.Dim(d))
			}
			r := Range{Lo: lo, Hi: hi}
			if !seen[ti] {
				regions[ti][d] = r
			} else {
				regions[ti][d] = Range{
					Lo: math.Min(regions[ti][d].Lo, r.Lo),
					Hi: math.Max(regions[ti][d].Hi, r.Hi),
				}
			}
		}
		seen[ti] = true
	}

	// Inputs never accessed (possible for degenerate descriptions) need no
	// data at all.
	for i := range regions {
		if !seen[i] {
			for d := range regions[i] {
				regions[i][d] = Range{}
			}
		}
	}
	return regions, nil
}

// isOpaqueFullDim reports whether access dim d came from an opaque ":".
// Opaque Full dims are encoded as empty Index expressions by the tdl
// package; distinguish them from a genuine constant-0 index by checking the
// description's opaque arguments.
func isOpaqueFullDim(desc *tdl.OpDesc, acc *tdl.Access, d int) bool {
	if !desc.HasOpaque() {
		return false
	}
	full := false
	walkBody(desc, func(o *tdl.OpaqueExpr) {
		for _, a := range o.Args {
			if a.Tensor != acc.Tensor || d >= len(a.Dims) {
				continue
			}
			if a.Dims[d].Full {
				full = true
			}
		}
	})
	return full
}

func walkBody(desc *tdl.OpDesc, fn func(*tdl.OpaqueExpr)) {
	var walk func(e tdl.Scalar)
	walk = func(e tdl.Scalar) {
		switch v := e.(type) {
		case *tdl.OpaqueExpr:
			fn(v)
		case *tdl.Bin:
			walk(v.L)
			walk(v.R)
		case *tdl.Unary:
			walk(v.X)
		case *tdl.ReduceExpr:
			walk(v.Body)
		}
	}
	walk(desc.Body)
}

func resolveExtent(sp *Spec, ra tdl.ReduceAxis) (float64, error) {
	if ra.Extent.Input == "" {
		return float64(ra.Extent.Const), nil
	}
	idx := sp.Desc.InputIndex(ra.Extent.Input)
	if idx < 0 {
		return 0, fmt.Errorf("partition: reduce axis %s bound to unknown input %s", ra.Name, ra.Extent.Input)
	}
	return float64(sp.InShapes[idx].Dim(ra.Extent.Dim)), nil
}

// OutputRegion returns the slab of the output tensor worker w of k produces
// under the strategy: its 1/k share along OutDim for SplitOutput, the whole
// (partial) output for SplitReduce.
func OutputRegion(sp *Spec, s Strategy, k, w int64) Region {
	reg := make(Region, sp.OutShape.Rank())
	for d := 0; d < sp.OutShape.Rank(); d++ {
		reg[d] = Range{Lo: 0, Hi: float64(sp.OutShape.Dim(d))}
	}
	if s.Kind == SplitOutput {
		ext := float64(sp.OutShape.Dim(s.OutDim))
		reg[s.OutDim] = Range{
			Lo: float64(w) / float64(k) * ext,
			Hi: float64(w+1) / float64(k) * ext,
		}
	}
	return reg
}
