package partition

import (
	"fmt"
	"math"
)

// Cut describes how one tensor is partitioned among the k worker groups of
// the current recursive step: along exactly one of its dimensions. Tofu
// always partitions every tensor (Sec 9, "Tofu always partitions every
// operator and tensor across all workers").
type Cut struct {
	Dim int
}

// Breakdown itemizes the communication a (strategy, cuts) combination
// incurs at one recursive step, in bytes summed over all k workers — the
// quantity Lemma 1 shows is a weighted sum of tensor sizes.
type Breakdown struct {
	InputBytes  []float64 // remote-fetch bytes per operator input
	OutputBytes float64   // redistribution or reduction bytes for the output
	Total       float64
}

// Cost prices executing the operator under strategy s when input i is cut
// along inCuts[i].Dim and the output is cut along outCut.Dim, across k
// workers. All shapes in sp are the *current* shapes at this recursive step
// (already divided by earlier steps' cuts).
func Cost(sp *Spec, s Strategy, k int64, inCuts []Cut, outCut Cut) (Breakdown, error) {
	if err := sp.Validate(); err != nil {
		return Breakdown{}, err
	}
	if len(inCuts) != len(sp.InShapes) {
		return Breakdown{}, fmt.Errorf("partition: %d cuts for %d inputs", len(inCuts), len(sp.InShapes))
	}
	if !sp.Applicable(s, k) {
		return Breakdown{}, fmt.Errorf("partition: strategy %v not applicable to %s at k=%d", s, sp.Desc.Name, k)
	}
	bd := Breakdown{InputBytes: make([]float64, len(sp.InShapes))}
	elemSize := float64(sp.DType.Size())

	// Input side: every worker fetches the part of its required region that
	// its own slab (under the tensor's cut) does not cover.
	for w := int64(0); w < k; w++ {
		regions, err := InputRegions(sp, s, k, w)
		if err != nil {
			return Breakdown{}, err
		}
		for i, reg := range regions {
			ishape := sp.InShapes[i]
			d := inCuts[i].Dim
			if d < 0 || d >= ishape.Rank() {
				return Breakdown{}, fmt.Errorf("partition: input %d cut dim %d out of range for %v", i, d, ishape)
			}
			need := reg.Elems()
			if need == 0 {
				continue
			}
			ext := float64(ishape.Dim(d))
			own := Range{Lo: float64(w) / float64(k) * ext, Hi: float64(w+1) / float64(k) * ext}
			overlap := reg[d].Intersect(own).Size()
			//

			// Elements covered locally: the box with its cut-dim range
			// replaced by the overlap with the worker's own slab.
			local := need
			if reg[d].Size() > 0 {
				local = need / reg[d].Size() * overlap
			}
			bd.InputBytes[i] += math.Max(0, need-local) * elemSize
		}
	}

	// Output side.
	outBytes := float64(sp.OutShape.Elems()) * elemSize
	d := outCut.Dim
	if d < 0 || d >= sp.OutShape.Rank() {
		return Breakdown{}, fmt.Errorf("partition: output cut dim %d out of range for %v", d, sp.OutShape)
	}
	switch s.Kind {
	case SplitOutput:
		if s.OutDim != d {
			// Each worker produced a full-range slab along d' = s.OutDim but
			// must end up owning a slab along d: all-to-all keeping 1/k.
			bd.OutputBytes = outBytes * float64(k-1) / float64(k)
		}
	case SplitReduce:
		// Every worker holds a full-size partial result; a reduce-scatter
		// (spread across all GPUs, Sec 6) leaves each worker with its
		// reduced 1/k slab along d: each worker ships (k-1)/k of its partial.
		bd.OutputBytes = outBytes * float64(k-1)
	}

	for _, b := range bd.InputBytes {
		bd.Total += b
	}
	bd.Total += bd.OutputBytes
	return bd, nil
}

// BestStrategy returns the cheapest applicable strategy for the given cuts,
// or an error when no strategy is applicable (e.g. no dimension divides k).
func BestStrategy(sp *Spec, k int64, inCuts []Cut, outCut Cut) (Strategy, Breakdown, error) {
	var (
		best     Strategy
		bestBD   Breakdown
		found    bool
		bestCost = math.Inf(1)
	)
	for _, s := range Enumerate(sp.Desc) {
		if !sp.Applicable(s, k) {
			continue
		}
		bd, err := Cost(sp, s, k, inCuts, outCut)
		if err != nil {
			continue
		}
		if bd.Total < bestCost {
			best, bestBD, bestCost, found = s, bd, bd.Total, true
		}
	}
	if !found {
		return Strategy{}, Breakdown{}, fmt.Errorf("partition: no applicable strategy for %s at k=%d", sp.Desc.Name, k)
	}
	return best, bestBD, nil
}
