package partition

import (
	"testing"

	"tofu/internal/shape"
	"tofu/internal/tdl"
)

// TestEveryRegisteredOpIsAnalyzable mirrors the paper's Sec 4.1 bootstrap
// ("TDL can describe 134 out of 139 MXNet operators"): every operator in
// the standard registry must yield at least one partition strategy from the
// analyzer — non-opaque axes for the general case, the batch axis for
// opaque batched operators.
func TestEveryRegisteredOpIsAnalyzable(t *testing.T) {
	for _, name := range tdl.Std.Names() {
		d, err := tdl.Std.Describe(name, nil)
		if err != nil {
			t.Errorf("describe %s: %v", name, err)
			continue
		}
		ss := Enumerate(d)
		if len(ss) == 0 {
			t.Errorf("operator %s has no partition strategy", name)
		}
		for _, s := range ss {
			if s.Kind == SplitOutput && d.OpaqueOutAxis(s.Axis) {
				t.Errorf("operator %s offers opaque axis %s", name, s.Axis)
			}
			if s.Kind == SplitReduce && s.Reducer == tdl.NoReduce {
				t.Errorf("operator %s reduce strategy lacks a reducer", name)
			}
		}
	}
}

// TestHaloScalesWithWorkers: k-way spatial splits exchange halos at the k-1
// interior boundaries, so halo traffic grows with (k-1) while aligned
// non-halo traffic stays zero.
func TestHaloScalesWithWorkers(t *testing.T) {
	d, err := tdl.Std.Describe("conv1d", nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := &Spec{
		Desc:     d,
		OutShape: shape.Of(8, 16, 64),
		InShapes: []shape.Shape{shape.Of(8, 32, 64), shape.Of(32, 16, 3)},
		DType:    shape.Float32,
	}
	var x Strategy
	for _, s := range Enumerate(d) {
		if s.Kind == SplitOutput && s.Axis == "x" {
			x = s
		}
	}
	halo := func(k int64) float64 {
		bd, err := Cost(sp, x, k, []Cut{{2}, {0}}, Cut{2})
		if err != nil {
			t.Fatal(err)
		}
		return bd.InputBytes[0]
	}
	h2, h4 := halo(2), halo(4)
	// Interior boundaries: 1 for k=2, 3 for k=4 — traffic scales ~3x.
	if h4 < h2*2.5 || h4 > h2*3.5 {
		t.Fatalf("halo scaling k=2->4: %g -> %g, want ~3x", h2, h4)
	}
}
