package tofu_test

import (
	"strings"
	"testing"

	"tofu"
)

// TestPublicAPIQuickstart exercises the documented flow end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	m, err := tofu.RNN(2, 1024, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tofu.Partition(m.G, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Plan.Steps) != 3 {
		t.Fatalf("8-way plan has %d steps", len(s.Plan.Steps))
	}
	if !s.Plan.Monotone() {
		t.Fatal("plan violates Theorem 2")
	}
	res := tofu.Simulate(s, m.Batch)
	if res.Throughput <= 0 {
		t.Fatal("no throughput")
	}
	if s.Memory.PeakBytes <= 0 {
		t.Fatal("no memory accounting")
	}
}

func TestPublicAPICustomOperator(t *testing.T) {
	i, j, k := tofu.Ax("i"), tofu.Ax("j"), tofu.Ax("k")
	d, err := tofu.DescribeOp("test_matmul_like").
		In("a", 2).In("b", 2).Out(i, j).
		Is(tofu.Reduce(tofu.Sum,
			[]tofu.ReduceAxisBinding{tofu.RVar(k, tofu.ExtentOf("a", 1))},
			tofu.Mul(tofu.At("a", i, k), tofu.At("b", k, j))))
	if err != nil {
		t.Fatal(err)
	}
	if err := tofu.RegisterOp(d); err != nil {
		t.Fatal(err)
	}
	ss, err := tofu.OpStrategies("test_matmul_like", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 3 {
		t.Fatalf("strategies = %v, want 2 output splits + 1 reduction", ss)
	}
	joined := strings.Join(ss, " ")
	if !strings.Contains(joined, "split-reduce(k/Sum)") {
		t.Fatalf("missing output-reduction strategy in %v", ss)
	}
}

func TestPublicAPIBuildersAndEvaluate(t *testing.T) {
	cfg := tofu.ModelConfig{Family: "mlp", Depth: 2, Width: 256, Batch: 32}
	m, err := tofu.BuildModel(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Batch != 32 {
		t.Fatal("batch lost")
	}
	out, err := tofu.EvaluateSystem(cfg, tofu.Ideal, tofu.DefaultHW())
	if err != nil {
		t.Fatal(err)
	}
	if out.Throughput <= 0 {
		t.Fatal("ideal evaluation failed")
	}
}

func TestPublicAPIGraphConstruction(t *testing.T) {
	g := tofu.NewGraph()
	x := g.Input("x", tofu.ShapeOf(16, 64))
	w := g.Weight("w", tofu.ShapeOf(64, 64))
	h := g.Apply("matmul", nil, x, w)
	h = g.Apply("relu", nil, h)
	if !h.Shape.Equal(tofu.ShapeOf(16, 64)) {
		t.Fatalf("shape inference broken: %v", h.Shape)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPITopology exercises the topology surface: profiles, the
// topology-aware pipeline, and SimulateWith honoring the machine the
// summary was produced for (plain Simulate ignores the caller's hardware).
func TestPublicAPITopology(t *testing.T) {
	names := tofu.TopologyProfiles()
	if len(names) < 3 {
		t.Fatalf("profile library too small: %v", names)
	}
	dgx, err := tofu.TopologyProfile("dgx1")
	if err != nil {
		t.Fatal(err)
	}
	m, err := tofu.RNN(2, 1024, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := tofu.DefaultPipelineOptions()
	opts.Topology = &dgx
	s, err := tofu.PartitionWithOptions(m.G, int64(dgx.NumGPUs()), opts)
	if err != nil {
		t.Fatal(err)
	}
	onDGX := tofu.SimulateWith(s, m.Batch, opts)
	if onDGX.Throughput <= 0 {
		t.Fatal("no throughput on dgx1")
	}
	// Same summary priced on the slower flat default machine: NVLink-level
	// transfers must not be slower than all-PCIe ones.
	onFlat := tofu.SimulateWith(s, m.Batch, tofu.DefaultPipelineOptions())
	if onDGX.CommSeconds > onFlat.CommSeconds {
		t.Fatalf("dgx1 comm %g slower than flat %g", onDGX.CommSeconds, onFlat.CommSeconds)
	}

	out, err := tofu.EvaluateSystemOn(
		tofu.ModelConfig{Family: "rnn", Depth: 2, Width: 1024, Batch: 64},
		tofu.TofuSystem, dgx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Throughput <= 0 {
		t.Fatal("EvaluateSystemOn produced no throughput")
	}
}

// TestSingleWorkerTrivialPlan locks in the k=1 contract: Factorize(1) is
// the empty factor list, so Partition returns a valid zero-step plan
// (every tensor whole on the one worker) that flows through graph
// generation, memory planning and simulation end to end.
func TestSingleWorkerTrivialPlan(t *testing.T) {
	m, err := tofu.MLP(2, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	s, err := tofu.Partition(m.G, 1)
	if err != nil {
		t.Fatalf("k=1 partition: %v", err)
	}
	if len(s.Plan.Steps) != 0 {
		t.Fatalf("trivial plan has %d steps, want 0", len(s.Plan.Steps))
	}
	if c := s.Plan.TotalComm(); c != 0 {
		t.Fatalf("trivial plan has communication %g, want 0", c)
	}
	for _, ten := range m.G.Tensors {
		if fs, ok := s.Plan.FinalShapes[ten.ID]; ok && !fs.Equal(ten.Shape) {
			t.Fatalf("tensor %v shard %v != full shape %v", ten, fs, ten.Shape)
		}
	}
	res := tofu.Simulate(s, m.Batch)
	if res.Throughput <= 0 || res.OOM {
		t.Fatalf("trivial plan does not simulate: throughput %g, oom %v", res.Throughput, res.OOM)
	}
}
