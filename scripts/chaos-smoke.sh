#!/usr/bin/env bash
# chaos-smoke.sh — process-level chaos harness for the serving stack.
#
# Two tofu-serve replicas share one persistent plan store. Replica B runs
# with -faultfs read corruption, so every store entry it loads comes back
# with flipped bytes until the rule's budget is spent. Replica A is killed
# with SIGKILL while a search is in flight, leaving whatever half-written
# state that produces in the shared directory. The harness then asserts:
#
#   1. no request ever gets a 5xx — corrupt reads quarantine and recompute;
#   2. the survivor's /metrics shows store_corrupt and store_quarantined;
#   3. the survivor still serves fresh requests after the SIGKILL;
#   4. the survivor drains cleanly on SIGTERM.
#
# The in-process half of this harness (deterministic fault schedules, exact
# quarantine counts) lives in internal/service/chaos_test.go.
set -euo pipefail

cd "$(dirname "$0")/.."

BIN=${BIN:-/tmp/tofu-serve-chaos}
go build -o "$BIN" ./cmd/tofu-serve

STORE_DIR=$(mktemp -d)
LOG_A=$(mktemp) LOG_B=$(mktemp)
A_PID="" B_PID=""
cleanup() {
  [ -n "$A_PID" ] && kill -9 "$A_PID" 2>/dev/null || true
  [ -n "$B_PID" ] && kill -9 "$B_PID" 2>/dev/null || true
  rm -rf "$STORE_DIR"
}
trap cleanup EXIT

# wait_addr LOG: poll a replica's log for the announce line, print the addr.
wait_addr() {
  local addr=""
  for _ in $(seq 1 50); do
    addr=$(sed -n 's/.*listening on \([0-9.:]*\) .*/\1/p' "$1" | head -1)
    [ -n "$addr" ] && break
    sleep 0.2
  done
  [ -n "$addr" ] || { echo "replica never announced an address" >&2; cat "$1" >&2; exit 1; }
  echo "$addr"
}

# post ADDR BODY: POST a partition request, print the status code, never fail
# the shell — status assertions happen in check().
post() {
  curl -s -o /dev/null -w '%{http_code}' -X POST "http://$1/v1/partition" -d "$2"
}

FAILED=0
check() { # check CODE WHAT: any 5xx (or curl failure, code 000) is a harness failure
  local code=$1 what=$2
  echo "  $what -> HTTP $code"
  case "$code" in
  2??) ;;
  *) echo "CHAOS FAIL: $what got HTTP $code" >&2; FAILED=1 ;;
  esac
}

BODY1='{"model":{"family":"mlp","depth":4,"width":256,"batch":64}}'
BODY2='{"model":{"family":"mlp","depth":4,"width":256,"batch":32}}'
BODY3='{"model":{"family":"mlp","depth":4,"width":256,"batch":16}}'

"$BIN" -addr 127.0.0.1:0 -store "$STORE_DIR" >"$LOG_A" 2>&1 &
A_PID=$!
"$BIN" -addr 127.0.0.1:0 -store "$STORE_DIR" -faultfs 'read:*.plan:corrupt:2' >"$LOG_B" 2>&1 &
B_PID=$!
ADDR_A=$(wait_addr "$LOG_A")
ADDR_B=$(wait_addr "$LOG_B")
echo "replica A (clean) on $ADDR_A, replica B (corrupt reads) on $ADDR_B, store $STORE_DIR"

# A computes a plan into the shared store; B's first lookup of the same
# request reads that entry through the corrupting FS — it must quarantine
# the entry and recompute, never surface a 5xx.
check "$(post "$ADDR_A" "$BODY1")" "A: seed search"
check "$(post "$ADDR_B" "$BODY1")" "B: corrupt store read, recompute"
check "$(post "$ADDR_B" "$BODY1")" "B: repeat after quarantine"

# Kill A mid-search with SIGKILL: no drain, no cleanup, whatever partial
# state its store writer was holding stays behind in the shared directory.
post "$ADDR_A" "$BODY2" >/dev/null &
KILLER=$!
sleep 0.1
kill -9 "$A_PID"
wait "$A_PID" 2>/dev/null || true
wait "$KILLER" 2>/dev/null || true
A_PID=""
echo "replica A killed with SIGKILL mid-request"

# The survivor keeps serving: the killed replica's request, a fresh model,
# and the original — all through the store directory A abandoned.
check "$(post "$ADDR_B" "$BODY2")" "B: request the killed replica was serving"
check "$(post "$ADDR_B" "$BODY3")" "B: fresh model post-kill"
check "$(post "$ADDR_B" "$BODY1")" "B: original request post-kill"

# The corruption was real and the operator can see it.
METRICS=$(mktemp)
curl -fsS "http://$ADDR_B/metrics" -o "$METRICS"
grep -q '"store_corrupt": [1-9]' "$METRICS" || {
  echo "CHAOS FAIL: no corrupt store read was ever detected" >&2
  cat "$METRICS" >&2
  FAILED=1
}
grep -q '"store_quarantined": [1-9]' "$METRICS" || {
  echo "CHAOS FAIL: corruption detected but nothing quarantined" >&2
  cat "$METRICS" >&2
  FAILED=1
}
ls "$STORE_DIR"/*.corrupt.* >/dev/null 2>&1 || {
  echo "CHAOS FAIL: no forensic .corrupt.<n> specimen in the store dir" >&2
  ls -la "$STORE_DIR" >&2
  FAILED=1
}

# The survivor drains cleanly under SIGTERM.
kill -TERM "$B_PID"
wait "$B_PID" || true
grep -q "drained cleanly" "$LOG_B" || {
  echo "CHAOS FAIL: survivor did not drain cleanly" >&2
  tail -20 "$LOG_B" >&2
  FAILED=1
}
B_PID=""

if [ "$FAILED" -ne 0 ]; then
  echo "chaos smoke FAILED" >&2
  exit 1
fi
echo "chaos smoke OK: zero 5xx, corruption quarantined, survivor drained cleanly"
