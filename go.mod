module tofu

go 1.24
